//! Shared experiment plumbing: run settings, workload selection, a
//! memoising run cache, and the parallel experiment executor.
//!
//! # Parallel execution
//!
//! Every `(workload, variant)` simulation is independent — each owns its
//! [`System`], and every stochastic choice flows from the run's own seeded
//! RNG — so experiments fan them out across cores with [`RunCache::run_batch`]
//! (a work-queue over `std::thread::scope`, no external dependencies).
//! Results are **bit-identical** to the serial order regardless of thread
//! count or scheduling; the `parallel_matches_serial` test asserts it.
//!
//! The thread count comes from `PSA_THREADS` (default: all available
//! cores). `PSA_THREADS=1` forces the serial path.
//!
//! # Observability
//!
//! Each [`RunCache`] tracks an [`ExecStats`]: simulations executed, memo
//! hits, per-run wall-clock, simulated cycles (and the derived
//! cycles/second throughput), peak queue depth and per-thread run counts.
//! The same counters are aggregated process-wide and embedded in every
//! emitted `BENCH_*.json` under `"executor"` (see [`global_stats`]).
//!
//! # Warm-up checkpointing
//!
//! Every memoised simulation warms up through the
//! [`crate::ckpt`] store: the first run of a `(config, workload,
//! variant)` key executes the warm-up and snapshots the machine; later
//! runs under the same exact key restore the snapshot and skip straight
//! to measurement. Results are bit-identical to a cold warm-up (the
//! `psa-sim` snapshot tests prove it); `PSA_CKPT_DIR` extends the store
//! across processes. See `docs/CHECKPOINT.md`.
//!
//! # Fault isolation
//!
//! Every job — memoised `(workload, variant)` pairs in [`RunCache`] and
//! custom-configured jobs in [`parallel_map_isolated`] — runs under
//! [`std::panic::catch_unwind`] and through the simulator's `Result`
//! paths, so one panicking or watchdog-stalled job becomes a recorded gap
//! ([`RunOutcome::Failed`] / a `None` slot) instead of poisoning the
//! batch: the remaining jobs complete bit-identically to a clean run, the
//! failure lands in the process-wide journal (the `"failures"` array of
//! every `BENCH_*.json`, see [`failures_json`]), and figures render
//! partial results with explicit gaps. `PSA_INJECT_PANIC` and
//! `PSA_INJECT_STALL` (`<workload>` or `<workload>/<label>`) inject
//! faults for testing this machinery (see `docs/ROBUSTNESS.md`). Only the
//! raw [`parallel_map`] primitive stays unisolated; every figure's
//! simulation jobs go through one of the isolated paths.

use psa_common::obs::store::StoreSnapshot;
use psa_core::PageSizePolicy;
use psa_prefetchers::PrefetcherKind;
use psa_sim::report::{self, Json};
use psa_sim::{L1dPrefKind, ObsConfig, ObsReport, RunReport, SimConfig, SimError, System};
use psa_store::fault::FaultPlan;
use psa_traces::{catalog, WorkloadRef, WorkloadSpec};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, Once};
use std::time::{Duration, Instant};

/// Experiment-wide settings.
#[derive(Debug, Clone, Copy)]
pub struct Settings {
    /// The machine/run configuration (Table I + instruction budget).
    pub config: SimConfig,
}

impl Default for Settings {
    fn default() -> Self {
        // Laptop-scale default budget; `PSA_WARMUP` / `PSA_INSTRUCTIONS`
        // scale it up towards the paper's 250M+250M.
        let base = SimConfig::default()
            .with_warmup(40_000)
            .with_instructions(120_000);
        Self {
            config: RunnerOptions::from_env()
                .unwrap_or_else(|e| panic!("{e}"))
                .apply(base),
        }
    }
}

/// Which on-disk layout the checkpoint store uses (`PSA_CKPT_LAYOUT`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CkptLayout {
    /// The crash-safe tiered segment store (`psa-store`): checksummed
    /// frames in append-only segments under an atomically-swapped
    /// manifest, with report memoisation. The default.
    #[default]
    Tiered,
    /// Legacy flat `psa-<key>.ckpt` snapshot files — a compatibility
    /// escape hatch; no report memoisation, no fault injection.
    Flat,
}

/// Every documented `PSA_*` knob as one typed options value — the single
/// supported way the environment reaches the machinery. Build one with
/// [`RunnerOptions::from_env`] (strict: a set-but-malformed variable is a
/// [`SimError::EnvVar`] naming the variable and the value, never a
/// silently ignored knob), then override programmatically with the
/// `with_*` builders — programmatic settings always win over the
/// environment — and thread the run-shape subset into a [`SimConfig`]
/// with [`RunnerOptions::apply`].
///
/// The environment stays supported as a compatibility layer, but this
/// module is the only place it is parsed; no other crate in the workspace
/// reads `PSA_*` variables directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunnerOptions {
    /// `PSA_THREADS` — parallel-executor worker count (`None`: all
    /// available cores; see [`RunnerOptions::effective_threads`]).
    pub threads: Option<usize>,
    /// `PSA_WORKLOAD_LIMIT` — stride-subsample the 80-workload set.
    pub workload_limit: Option<usize>,
    /// `PSA_MIXES` — multi-core mix count (`None`: default 8).
    pub mixes: Option<usize>,
    /// `PSA_WARMUP` — warm-up instructions per core.
    pub warmup: Option<u64>,
    /// `PSA_INSTRUCTIONS` — measured instructions per core.
    pub instructions: Option<u64>,
    /// `PSA_WATCHDOG` — forward-progress watchdog threshold in cycles
    /// (0 disables).
    pub watchdog: Option<u64>,
    /// `PSA_CHECK` — run the hierarchy invariant audits at drain points.
    pub check: Option<bool>,
    /// `PSA_JSON_RUNS=1` — embed raw per-run reports in emitted JSON.
    pub json_runs: bool,
    /// `PSA_CKPT_MEM_MB` — in-memory warm-up checkpoint store cap
    /// (`None`: 256MB).
    pub ckpt_mem_mb: Option<usize>,
    /// `PSA_CKPT_DIR` — on-disk warm-up checkpoint store directory.
    pub ckpt_dir: Option<PathBuf>,
    /// `PSA_CKPT_DISK_MB` — disk-tier budget of the tiered checkpoint
    /// store (`None`: 2048MB).
    pub ckpt_disk_mb: Option<usize>,
    /// `PSA_CKPT_LAYOUT` — on-disk checkpoint layout, `tiered`
    /// (default) or `flat` (the legacy file-per-snapshot escape hatch).
    pub ckpt_layout: Option<CkptLayout>,
    /// `PSA_FAULT_PLAN` — deterministic IO fault plan injected under
    /// the checkpoint store (validated [`FaultPlan`] spec; testing and
    /// CI machinery, see `docs/ROBUSTNESS.md`).
    pub fault_plan: Option<String>,
    /// `PSA_INJECT_PANIC` — fault-inject a panic into the named job
    /// (`<workload>` or `<workload>/<label>`; testing machinery).
    pub inject_panic: Option<String>,
    /// `PSA_INJECT_STALL` — fault-inject a watchdog stall likewise.
    pub inject_stall: Option<String>,
    /// `PSA_UPDATE_GOLDEN=1` — rewrite the golden digests (test-only).
    pub update_golden: bool,
    /// `PSA_BENCH_JSON_DIR` — where `BENCH_*.json` documents go
    /// (`None`: the working directory).
    pub bench_json_dir: Option<PathBuf>,
    /// `PSA_OBS=1` plus `PSA_OBS_RING` / `PSA_OBS_SAMPLE` — the
    /// observability layer shape ([`ObsConfig`]); `None` leaves the
    /// config's own (default: disabled) setting untouched.
    pub obs: Option<ObsConfig>,
    /// `PSA_OBS_TRACE` — write the first observed run's Chrome
    /// `trace_event` JSON to this path.
    pub obs_trace: Option<PathBuf>,
}

impl RunnerOptions {
    /// Read every documented `PSA_*` variable, strictly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EnvVar`] naming the variable and the value
    /// when any set variable does not parse.
    pub fn from_env() -> Result<Self, SimError> {
        let obs_on = env_flag("PSA_OBS")?;
        let obs_ring = env_u32("PSA_OBS_RING")?;
        let obs_sample = env_u32("PSA_OBS_SAMPLE")?;
        let obs = if obs_on.is_some() || obs_ring.is_some() || obs_sample.is_some() {
            let base = ObsConfig::default();
            Some(ObsConfig {
                enabled: obs_on.unwrap_or(false),
                ring_capacity: obs_ring.unwrap_or(base.ring_capacity),
                sample_every: obs_sample.unwrap_or(base.sample_every),
            })
        } else {
            None
        };
        Ok(Self {
            threads: env_positive("PSA_THREADS")?,
            workload_limit: env_positive("PSA_WORKLOAD_LIMIT")?,
            mixes: env_positive("PSA_MIXES")?,
            warmup: env_u64("PSA_WARMUP")?,
            instructions: env_u64("PSA_INSTRUCTIONS")?,
            watchdog: env_u64("PSA_WATCHDOG")?,
            check: env_flag("PSA_CHECK")?,
            json_runs: env_flag("PSA_JSON_RUNS")?.unwrap_or(false),
            ckpt_mem_mb: env_positive("PSA_CKPT_MEM_MB")?,
            ckpt_dir: env_path("PSA_CKPT_DIR"),
            ckpt_disk_mb: env_positive("PSA_CKPT_DISK_MB")?,
            ckpt_layout: env_layout("PSA_CKPT_LAYOUT")?,
            fault_plan: env_fault_plan("PSA_FAULT_PLAN")?,
            inject_panic: env_string("PSA_INJECT_PANIC"),
            inject_stall: env_string("PSA_INJECT_STALL"),
            update_golden: env_flag("PSA_UPDATE_GOLDEN")?.unwrap_or(false),
            bench_json_dir: env_path("PSA_BENCH_JSON_DIR"),
            obs,
            obs_trace: env_path("PSA_OBS_TRACE"),
        })
    }

    /// Override the worker-thread count.
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Override the workload subsample limit.
    pub fn with_workload_limit(mut self, n: usize) -> Self {
        self.workload_limit = Some(n);
        self
    }

    /// Override the multi-core mix count.
    pub fn with_mixes(mut self, n: usize) -> Self {
        self.mixes = Some(n);
        self
    }

    /// Override the warm-up instruction budget.
    pub fn with_warmup(mut self, n: u64) -> Self {
        self.warmup = Some(n);
        self
    }

    /// Override the measured instruction budget.
    pub fn with_instructions(mut self, n: u64) -> Self {
        self.instructions = Some(n);
        self
    }

    /// Override the watchdog threshold (0 disables).
    pub fn with_watchdog(mut self, cycles: u64) -> Self {
        self.watchdog = Some(cycles);
        self
    }

    /// Enable or disable the hierarchy invariant audits.
    pub fn with_check(mut self, check: bool) -> Self {
        self.check = Some(check);
        self
    }

    /// Override the observability shape (`ObsConfig::on()` enables it).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Override the Chrome-trace output path.
    pub fn with_obs_trace(mut self, path: PathBuf) -> Self {
        self.obs_trace = Some(path);
        self
    }

    /// Thread the run-shape subset (budgets, watchdog, audits,
    /// observability) into a [`SimConfig`]; unset fields leave the
    /// config's own values untouched.
    pub fn apply(&self, mut config: SimConfig) -> SimConfig {
        if let Some(v) = self.warmup {
            config.warmup = v;
        }
        if let Some(v) = self.instructions {
            config.instructions = v;
        }
        if let Some(v) = self.watchdog {
            config.watchdog_cycles = v;
        }
        if let Some(v) = self.check {
            config.check = v;
        }
        if let Some(obs) = self.obs {
            config.obs = obs;
        }
        config
    }

    /// The worker-thread count these options resolve to: `threads` when
    /// set, else every available core.
    pub fn effective_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    }
}

impl Settings {
    /// The evaluated workload set, honouring `PSA_WORKLOAD_LIMIT` by
    /// stride-sampling so each suite stays represented.
    ///
    /// # Panics
    ///
    /// Panics when `PSA_WORKLOAD_LIMIT` is set but malformed — see
    /// [`Settings::try_workloads`].
    pub fn workloads(&self) -> Vec<&'static WorkloadSpec> {
        self.try_workloads().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Settings::workloads`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EnvVar`] when `PSA_WORKLOAD_LIMIT` is set but
    /// not a positive integer.
    pub fn try_workloads(&self) -> Result<Vec<&'static WorkloadSpec>, SimError> {
        let all: Vec<&WorkloadSpec> = catalog::all().iter().collect();
        match env_positive("PSA_WORKLOAD_LIMIT")? {
            Some(limit) if limit < all.len() => {
                let stride = all.len().div_ceil(limit);
                Ok(all.into_iter().step_by(stride).collect())
            }
            _ => Ok(all),
        }
    }

    /// Number of multi-core mixes, honouring `PSA_MIXES` (default 8;
    /// the paper uses 100).
    ///
    /// # Panics
    ///
    /// Panics when `PSA_MIXES` is set but malformed — see
    /// [`Settings::try_mixes`].
    pub fn mixes(&self) -> usize {
        self.try_mixes().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Settings::mixes`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EnvVar`] when `PSA_MIXES` is set but not a
    /// positive integer.
    pub fn try_mixes(&self) -> Result<usize, SimError> {
        Ok(env_positive("PSA_MIXES")?.unwrap_or(8))
    }
}

/// Parse an env var required to hold a positive integer; unset is `None`,
/// set-but-malformed (including zero) is an error naming the variable and
/// the value.
fn env_positive(key: &str) -> Result<Option<usize>, SimError> {
    match std::env::var(key) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.parse::<usize>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(SimError::EnvVar {
                var: key.into(),
                value: raw,
                reason: "expected a positive integer".into(),
            }),
        },
    }
}

/// Parse an env var required to hold a `u64`; unset is `None`,
/// set-but-malformed is an error naming the variable and the value.
fn env_u64(key: &str) -> Result<Option<u64>, SimError> {
    match std::env::var(key) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.parse::<u64>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(SimError::EnvVar {
                var: key.into(),
                value: raw,
                reason: "expected an unsigned integer".into(),
            }),
        },
    }
}

/// Parse an env var required to hold a positive `u32`; unset is `None`.
fn env_u32(key: &str) -> Result<Option<u32>, SimError> {
    match std::env::var(key) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.parse::<u32>() {
            Ok(n) if n > 0 => Ok(Some(n)),
            _ => Err(SimError::EnvVar {
                var: key.into(),
                value: raw,
                reason: "expected a positive 32-bit integer".into(),
            }),
        },
    }
}

/// Parse a checkpoint-layout env var: `tiered` or `flat`, unset is
/// `None`, anything else is an error naming the variable and the value.
fn env_layout(key: &str) -> Result<Option<CkptLayout>, SimError> {
    match std::env::var(key) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.as_str() {
            "tiered" => Ok(Some(CkptLayout::Tiered)),
            "flat" => Ok(Some(CkptLayout::Flat)),
            _ => Err(SimError::EnvVar {
                var: key.into(),
                value: raw,
                reason: "expected \"tiered\" or \"flat\"".into(),
            }),
        },
    }
}

/// Parse (and validate) a fault-plan env var through
/// [`FaultPlan::parse`]; the validated raw spec string is kept, since
/// the plan itself is rebuilt wherever the store opens.
fn env_fault_plan(key: &str) -> Result<Option<String>, SimError> {
    match std::env::var(key) {
        Err(_) => Ok(None),
        Ok(raw) => match FaultPlan::parse(&raw) {
            Ok(_) => Ok(Some(raw)),
            Err(reason) => Err(SimError::EnvVar {
                var: key.into(),
                value: raw,
                reason,
            }),
        },
    }
}

/// Parse a boolean env flag: `1` is true, `0` is false, unset is `None`,
/// anything else is an error naming the variable and the value.
fn env_flag(key: &str) -> Result<Option<bool>, SimError> {
    match std::env::var(key) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.as_str() {
            "1" => Ok(Some(true)),
            "0" => Ok(Some(false)),
            _ => Err(SimError::EnvVar {
                var: key.into(),
                value: raw,
                reason: "expected 0 or 1".into(),
            }),
        },
    }
}

/// An env var taken verbatim as a path; unset (or non-unicode) is `None`.
fn env_path(key: &str) -> Option<PathBuf> {
    std::env::var_os(key).map(PathBuf::from)
}

/// An env var taken verbatim as a string; unset is `None`.
fn env_string(key: &str) -> Option<String> {
    std::env::var(key).ok()
}

/// Look up a workload in the trace catalog, reporting a miss as a typed
/// error instead of an `expect` at every call site.
///
/// # Errors
///
/// Returns [`SimError::UnknownWorkload`] when `name` matches nothing.
pub fn workload(name: &str) -> Result<&'static WorkloadSpec, SimError> {
    catalog::workload(name).ok_or_else(|| SimError::UnknownWorkload { name: name.into() })
}

/// Worker-thread count for parallel experiment execution: `PSA_THREADS`
/// when set to a positive integer, else every available core.
///
/// # Panics
///
/// Panics when `PSA_THREADS` is set but malformed — see [`try_threads`].
pub fn threads() -> usize {
    try_threads().unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`threads`].
///
/// # Errors
///
/// Returns [`SimError::EnvVar`] when `PSA_THREADS` is set but not a
/// positive integer.
pub fn try_threads() -> Result<usize, SimError> {
    Ok(env_positive("PSA_THREADS")?
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())))
}

/// What ran on the L2C prefetcher slot (or, for [`Variant::L1d`], which
/// L1D prefetcher ran with the L2C slot empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// No prefetching anywhere (the speedup baseline of Figures 4/5/13).
    NoPrefetch,
    /// A prefetcher at one of the paper's page-size policies.
    Pref(PrefetcherKind, PageSizePolicy),
    /// Like [`Variant::Pref`] but with the §III "Magic" page-size oracle
    /// instead of PPM's MSHR bit.
    PrefMagic(PrefetcherKind, PageSizePolicy),
    /// An L1D prefetcher with no L2C prefetching (Figure 13's comparison
    /// points).
    L1d(L1dPrefKind),
}

impl Variant {
    /// Stable label used in JSON exports and summaries.
    pub fn label(&self) -> String {
        match self {
            Variant::NoPrefetch => "no-prefetch".into(),
            Variant::Pref(kind, policy) => format!("{}{}", kind.name(), policy.suffix()),
            Variant::PrefMagic(kind, policy) => {
                format!("{}-Magic{}", kind.name(), policy.suffix())
            }
            Variant::L1d(kind) => format!("L1D-{kind}"),
        }
    }

    /// Every expressible variant, in a stable order — the inverse domain
    /// of [`Variant::label`]. The kind list is [`PrefetcherKind::ALL`],
    /// the one canonical (append-only) family order, so a new family is
    /// automatically enumerable and parseable here the moment it exists.
    pub fn all() -> Vec<Variant> {
        const POLICIES: [PageSizePolicy; 4] = [
            PageSizePolicy::Original,
            PageSizePolicy::Psa,
            PageSizePolicy::Psa2m,
            PageSizePolicy::PsaSd,
        ];
        const L1D: [L1dPrefKind; 4] = [
            L1dPrefKind::None,
            L1dPrefKind::NextLine,
            L1dPrefKind::Ipcp,
            L1dPrefKind::IpcpPlusPlus,
        ];
        let mut all = vec![Variant::NoPrefetch];
        for &k in &PrefetcherKind::ALL {
            for &p in &POLICIES {
                all.push(Variant::Pref(k, p));
            }
        }
        for &k in &PrefetcherKind::ALL {
            for &p in &POLICIES {
                all.push(Variant::PrefMagic(k, p));
            }
        }
        for &k in &L1D {
            all.push(Variant::L1d(k));
        }
        all
    }

    /// Parse a [`Variant::label`] back into the variant. Guaranteed
    /// total over the label space by construction: the finite candidate
    /// set is enumerated and compared by label, so `parse(v.label())
    /// == Some(v)` for every variant (the round-trip test proves it).
    pub fn parse(label: &str) -> Option<Variant> {
        Variant::all().into_iter().find(|v| v.label() == label)
    }

    /// The [`SimConfig`] this variant actually simulates: the module
    /// spec, the Magic page-size oracle, and the L1D prefetcher are the
    /// only fields a variant touches. This is the one place the mapping
    /// lives — the executor and external drivers (golden fixtures, the
    /// bench harness) share it, so a run reproduced outside the run
    /// cache is bit-identical to the memoised one.
    pub fn build_config(&self, config: SimConfig) -> SimConfig {
        use psa_prefetchers::ModuleSpec;
        match *self {
            Variant::NoPrefetch => config.with_module_spec(ModuleSpec::none()),
            Variant::Pref(kind, policy) => config.with_module_spec(ModuleSpec::pref(kind, policy)),
            Variant::PrefMagic(kind, policy) => {
                let mut c = config.with_module_spec(ModuleSpec::pref(kind, policy));
                c.page_size_source = psa_core::ppm::PageSizeSource::Magic;
                c
            }
            Variant::L1d(kind) => {
                let mut c = config.with_module_spec(ModuleSpec::none());
                c.l1d_prefetcher = kind;
                c
            }
        }
    }
}

/// How one memoised `(workload, variant)` job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome {
    /// The simulation completed and produced a report (boxed: a report is
    /// an order of magnitude larger than a failure record).
    Ok(Box<RunReport>),
    /// The job panicked, stalled into the watchdog, or failed validation.
    /// The batch it ran in still completed; this row is a recorded gap.
    Failed {
        /// The workload that was running.
        workload: &'static str,
        /// The variant that was running.
        variant: Variant,
        /// Human-readable failure description (panic message, watchdog
        /// snapshot, or config error).
        reason: String,
        /// The failure was a forward-progress watchdog abort.
        watchdog: bool,
    },
}

impl RunOutcome {
    /// The report, when the job completed.
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            RunOutcome::Ok(r) => Some(r),
            RunOutcome::Failed { .. } => None,
        }
    }
}

/// Simulate one `(workload, variant)` pair. Pure: the run owns its
/// [`System`] and seeded RNG, so the result depends only on the
/// arguments — this is what makes parallel execution bit-identical to
/// serial. The warm-up goes through the checkpoint store
/// ([`crate::ckpt::warm_via_checkpoint`]), which is transparent: a
/// restored warm state is bit-identical to a freshly simulated one.
fn try_simulate(
    config: SimConfig,
    workload: WorkloadRef,
    variant: Variant,
) -> Result<RunReport, SimError> {
    let build_config = variant.build_config(config);
    let build: Box<dyn Fn() -> Result<System, SimError>> =
        Box::new(move || System::try_from_refs(build_config, &[workload]));
    let label = variant.label();
    // Finished-report memoisation: with the tiered disk store available
    // (and observability off), a report computed by an earlier process
    // at the same (config, workload, variant) key is served bit-identical
    // from the store instead of re-simulated. The key hashes the
    // pre-variant config plus the label, which encodes every config
    // mutation a variant applies.
    let memo_key = crate::ckpt::report_memo_enabled(&config)
        .then(|| crate::ckpt::report_key(&config, workload.name(), &label));
    if let Some(key) = memo_key {
        let t0 = Instant::now();
        let hit = crate::ckpt::report_from_store(key, workload.name());
        record_phase_snapshot(t0.elapsed());
        if let Some(report) = hit {
            return Ok(report);
        }
    }
    let sys = crate::ckpt::warm_via_checkpoint(&*build, &label)?;
    let t0 = Instant::now();
    let result = sys.try_run_observed();
    record_phase(&G_PHASE_MEASURE_NANOS, t0.elapsed());
    let (report, obs) = result?;
    if let Some(obs) = obs {
        maybe_write_trace(&obs);
    }
    if let Some(key) = memo_key {
        let t0 = Instant::now();
        crate::ckpt::report_to_store(key, &report);
        record_phase_snapshot(t0.elapsed());
    }
    Ok(report)
}

/// Write the first observed run's Chrome `trace_event` JSON to
/// `PSA_OBS_TRACE` / [`RunnerOptions::obs_trace`]. One trace per process:
/// the first measured run to finish wins, which is deterministic under
/// `PSA_THREADS=1` and representative otherwise. Lenient: unset means no
/// trace, and an unwritable path is a warning, not a failed run.
fn maybe_write_trace(obs: &ObsReport) {
    static TRACE_ONCE: Once = Once::new();
    let Some(path) = env_path("PSA_OBS_TRACE") else {
        return;
    };
    TRACE_ONCE.call_once(|| {
        if let Err(e) = std::fs::write(&path, obs.to_chrome_trace()) {
            eprintln!("PSA_OBS_TRACE: cannot write {}: {e}", path.display());
        }
    });
}

/// Whether the fault-injection variable `var` targets this job: its value
/// is either the workload name or `<workload>/<label>`.
fn inject_match_label(var: &str, workload: &str, label: &str) -> bool {
    std::env::var(var).is_ok_and(|v| v == workload || v == format!("{workload}/{label}"))
}

/// [`inject_match_label`] keyed by a memoised [`Variant`].
fn inject_match(var: &str, workload: &str, variant: Variant) -> bool {
    inject_match_label(var, workload, &variant.label())
}

/// Extract a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Run one job in isolation: panics are caught, simulator errors are
/// values, and either becomes a [`RunOutcome::Failed`] row. The fault
/// never escapes to the batch.
fn run_job(config: SimConfig, workload: WorkloadRef, variant: Variant) -> RunOutcome {
    let mut config = config;
    if inject_match("PSA_INJECT_STALL", workload.name(), variant) {
        // Threshold 1: the run aborts via the watchdog almost immediately
        // (nothing retires before the ROB fills; nothing drains before the
        // first fill matures).
        config.watchdog_cycles = 1;
    }
    let result = catch_unwind(AssertUnwindSafe(|| {
        if inject_match("PSA_INJECT_PANIC", workload.name(), variant) {
            panic!("injected panic (PSA_INJECT_PANIC)");
        }
        try_simulate(config, workload, variant)
    }));
    let failed = |reason: String, watchdog: bool| RunOutcome::Failed {
        workload: workload.name(),
        variant,
        reason,
        watchdog,
    };
    match result {
        Ok(Ok(report)) => RunOutcome::Ok(Box::new(report)),
        Ok(Err(e)) => {
            let watchdog = matches!(e, SimError::WatchdogStall(_));
            failed(e.to_string(), watchdog)
        }
        Err(payload) => failed(format!("panic: {}", panic_message(payload)), false),
    }
}

// Process-wide executor counters, aggregated across every RunCache and
// parallel_map so a bench binary can report one summary.
static G_SIMULATED: AtomicU64 = AtomicU64::new(0);
static G_MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static G_BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
static G_WALL_NANOS: AtomicU64 = AtomicU64::new(0);
static G_SIM_CYCLES: AtomicU64 = AtomicU64::new(0);
static G_QUEUE_PEAK: AtomicU64 = AtomicU64::new(0);
static G_FAILED: AtomicU64 = AtomicU64::new(0);
static G_WATCHDOG: AtomicU64 = AtomicU64::new(0);
static G_BATCH_WALL_NANOS: AtomicU64 = AtomicU64::new(0);

// Phase wall-time profiler: where worker time goes, split into warm-up
// simulation, the measured run, and checkpoint/snapshot I/O. Summed
// across threads, so the three can exceed batch wall time.
static G_PHASE_WARM_NANOS: AtomicU64 = AtomicU64::new(0);
static G_PHASE_MEASURE_NANOS: AtomicU64 = AtomicU64::new(0);
static G_PHASE_SNAPSHOT_NANOS: AtomicU64 = AtomicU64::new(0);

fn record_phase(phase: &AtomicU64, elapsed: Duration) {
    phase.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Charge `elapsed` to the warm-up simulation phase (called by the
/// checkpoint store when it actually simulates a warm-up).
pub(crate) fn record_phase_warm(elapsed: Duration) {
    record_phase(&G_PHASE_WARM_NANOS, elapsed);
}

/// Charge `elapsed` to the snapshot-I/O phase (checkpoint encode, decode,
/// restore, and file traffic).
pub(crate) fn record_phase_snapshot(elapsed: Duration) {
    record_phase(&G_PHASE_SNAPSHOT_NANOS, elapsed);
}

/// In-memory checkpoint store cap in bytes (`PSA_CKPT_MEM_MB`, default
/// 256MB). Deliberately lenient — a malformed value falls back to the
/// default rather than failing runs mid-batch; [`RunnerOptions::from_env`]
/// is the strict reading of the same variable.
pub(crate) fn ckpt_mem_cap_bytes() -> usize {
    std::env::var("PSA_CKPT_MEM_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(256)
        .saturating_mul(1 << 20)
}

/// On-disk checkpoint store directory (`PSA_CKPT_DIR`); `None` disables
/// the disk tier.
pub(crate) fn ckpt_disk_dir() -> Option<PathBuf> {
    env_path("PSA_CKPT_DIR")
}

/// Disk-tier budget of the tiered checkpoint store in bytes
/// (`PSA_CKPT_DISK_MB`, default 2048MB). Lenient like the other
/// checkpoint knobs; [`RunnerOptions::from_env`] is the strict reading.
pub(crate) fn ckpt_disk_cap_bytes() -> u64 {
    std::env::var("PSA_CKPT_DISK_MB")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2048)
        .saturating_mul(1 << 20)
}

/// On-disk checkpoint layout (`PSA_CKPT_LAYOUT`). Lenient: anything but
/// the exact legacy selector `flat` means the tiered default.
pub(crate) fn ckpt_layout() -> CkptLayout {
    if std::env::var("PSA_CKPT_LAYOUT").is_ok_and(|v| v == "flat") {
        CkptLayout::Flat
    } else {
        CkptLayout::Tiered
    }
}

/// Raw deterministic fault-plan spec for the checkpoint store
/// (`PSA_FAULT_PLAN`), unparsed; `None` when unset or empty. Strict
/// validation lives in [`RunnerOptions::from_env`].
pub(crate) fn fault_plan_spec() -> Option<String> {
    std::env::var("PSA_FAULT_PLAN")
        .ok()
        .filter(|s| !s.is_empty())
}

/// Where emitted `BENCH_*.json` documents go (`PSA_BENCH_JSON_DIR`,
/// default: the working directory). Lenient by the same argument as the
/// checkpoint-store knobs: a malformed value must not fail runs
/// mid-batch, and [`RunnerOptions::from_env`] is the strict reading.
pub fn bench_json_dir() -> PathBuf {
    env_path("PSA_BENCH_JSON_DIR").unwrap_or_else(|| PathBuf::from("."))
}

/// The trace file the trace-replay figure streams. Defaults to the
/// committed sample fixture next to this crate's golden digests;
/// `PSA_TRACE_FILE` points the figure at a different `.psatrace`.
/// Lenient like [`bench_json_dir`]: the strict reading happens when the
/// file is opened and verified, not here.
pub fn trace_replay_path() -> PathBuf {
    env_path("PSA_TRACE_FILE").unwrap_or_else(|| {
        PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/sample.psatrace"
        ))
    })
}

// Process-wide failure journal: every failed job, so [`doc`] can embed
// the `"failures"` array even when the cache lives inside a `collect()`.
// Keyed by (workload, label): memoised jobs use the variant label,
// `parallel_map_isolated` jobs their caller-supplied one.
#[allow(clippy::type_complexity)]
static G_FAILURES: Mutex<Vec<(&'static str, String, String, bool)>> = Mutex::new(Vec::new());

pub(crate) fn journal_failure(workload: &'static str, label: String, reason: &str, watchdog: bool) {
    G_FAILED.fetch_add(1, Ordering::Relaxed);
    if watchdog {
        G_WATCHDOG.fetch_add(1, Ordering::Relaxed);
    }
    G_FAILURES
        .lock()
        .expect("unpoisoned failure journal")
        .push((workload, label, reason.into(), watchdog));
}

/// The process-wide failure journal as a JSON array of
/// `{workload, variant, reason, watchdog}`, deduplicated and sorted by
/// (workload, variant label). Empty — serialising to exactly
/// `"failures": []` — when every job so far completed.
pub fn failures_json() -> Json {
    let journal = G_FAILURES.lock().expect("unpoisoned failure journal");
    render_failures(journal.iter())
}

/// A mark into the process-wide failure journal: everything journalled
/// from now on is "after" this mark. Pair with [`failures_json_since`]
/// to scope a document's `failures` array to one job's own runs in a
/// long-lived process (a server), where the process journal accumulates
/// across unrelated jobs.
pub fn failures_mark() -> usize {
    G_FAILURES.lock().expect("unpoisoned failure journal").len()
}

/// Like [`failures_json`], but restricted to failures journalled at or
/// after `mark` ([`failures_mark`]) whose workload is in `workloads` —
/// the failures attributable to one job's own batch.
pub fn failures_json_since(mark: usize, workloads: &[&str]) -> Json {
    let journal = G_FAILURES.lock().expect("unpoisoned failure journal");
    render_failures(
        journal
            .iter()
            .skip(mark)
            .filter(|(w, ..)| workloads.iter().any(|x| x == w)),
    )
}

/// Deduplicate (last record wins) and sort journal records into the
/// documented `failures` array shape.
fn render_failures<'a>(
    records: impl Iterator<Item = &'a (&'static str, String, String, bool)>,
) -> Json {
    let mut entries: std::collections::BTreeMap<(&'static str, String), (String, bool)> =
        std::collections::BTreeMap::new();
    for (w, label, reason, watchdog) in records {
        entries.insert((w, label.clone()), (reason.clone(), *watchdog));
    }
    Json::Arr(
        entries
            .into_iter()
            .map(|((w, label), (reason, watchdog))| {
                Json::obj([
                    ("workload", Json::str(w)),
                    ("variant", Json::str(&label)),
                    ("reason", Json::str(&reason)),
                    ("watchdog", Json::Bool(watchdog)),
                ])
            })
            .collect(),
    )
}

fn record_global(simulated: u64, memo_hits: u64, busy: Duration, wall: Duration, cycles: u64) {
    G_SIMULATED.fetch_add(simulated, Ordering::Relaxed);
    G_MEMO_HITS.fetch_add(memo_hits, Ordering::Relaxed);
    G_BUSY_NANOS.fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
    G_WALL_NANOS.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
    G_SIM_CYCLES.fetch_add(cycles, Ordering::Relaxed);
}

// Process-wide run journal: every simulation a RunCache executes is
// recorded here when `PSA_JSON_RUNS=1`, so [`doc`] can embed the raw
// reports even when the cache lives inside a `collect()` call.
static G_RUNS: Mutex<Vec<((&'static str, Variant), RunReport)>> = Mutex::new(Vec::new());

fn json_runs_enabled() -> bool {
    std::env::var("PSA_JSON_RUNS").is_ok_and(|v| v == "1")
}

fn journal_run(workload: &'static str, variant: Variant, report: &RunReport) {
    if json_runs_enabled() {
        G_RUNS
            .lock()
            .expect("unpoisoned journal")
            .push(((workload, variant), report.clone()));
    }
}

/// The process-wide run journal as a JSON array of
/// `{workload, variant, report}`, deduplicated (a pair re-simulated by a
/// later cache yields the identical report) and sorted by
/// (workload, variant label). Empty unless `PSA_JSON_RUNS=1` was set
/// while the runs executed.
pub fn journal_json() -> Json {
    let journal = G_RUNS.lock().expect("unpoisoned journal");
    let mut entries: std::collections::BTreeMap<(&'static str, String), &RunReport> =
        std::collections::BTreeMap::new();
    for ((w, v), r) in journal.iter() {
        entries.insert((w, v.label()), r);
    }
    Json::Arr(
        entries
            .into_iter()
            .map(|((w, label), r)| {
                Json::obj([
                    ("workload", Json::str(w)),
                    ("variant", Json::str(label)),
                    ("report", report::run_report(r)),
                ])
            })
            .collect(),
    )
}

/// Execution statistics of one [`RunCache`] (or, via [`global_stats`], the
/// whole process).
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Simulations actually executed.
    pub simulated: u64,
    /// `run()`/`speedup()` calls served from the memo instead.
    pub memo_hits: u64,
    /// Summed per-run wall-clock (CPU-side work across all threads).
    pub busy: Duration,
    /// Wall-clock spent inside `run()`/`run_batch()` (elapsed time).
    pub wall: Duration,
    /// Simulated cycles across executed runs.
    pub sim_cycles: u64,
    /// Deepest work queue handed to the executor at once.
    pub queue_peak: u64,
    /// Runs executed by each worker thread of the largest pool used.
    pub per_thread: Vec<u64>,
    /// Jobs that ended in a [`RunOutcome::Failed`] (panic, watchdog stall
    /// or validation error) instead of a report.
    pub failed: u64,
    /// The subset of `failed` aborted by the forward-progress watchdog.
    pub watchdog_aborted: u64,
    /// Wall-clock spent inside `run_batch()` specifically (a subset of
    /// `wall`): the number the checkpoint-determinism CI gate compares
    /// between cold and warm passes.
    pub batch_wall: Duration,
    /// Warm-ups skipped by restoring an in-memory checkpoint taken
    /// earlier in this process. Process-scope: populated by
    /// [`global_stats`], zero on per-cache stats (the store is shared).
    pub warmups_shared: u64,
    /// Jobs served from the on-disk checkpoint/result store
    /// (`PSA_CKPT_DIR`): warm-ups restored from disk plus finished
    /// reports memoised by an earlier process. Process-scope, like
    /// `warmups_shared`.
    pub ckpt_hits: u64,
    /// Worker time spent simulating warm-ups. Process-scope, like
    /// `warmups_shared`; summed across threads, so the three phases can
    /// exceed `batch_wall`.
    pub phase_warm: Duration,
    /// Worker time spent in measured runs. Process-scope.
    pub phase_measure: Duration,
    /// Worker time spent on checkpoint/snapshot I/O (encode, decode,
    /// restore, file traffic). Process-scope.
    pub phase_snapshot: Duration,
    /// Storage-tier counters of the tiered checkpoint/result store
    /// (hits, misses, retries, quarantined entries, recovered bytes,
    /// write failures, injected faults). Process-scope: populated by
    /// [`global_stats`] from the always-on `psa_common::obs::store`
    /// counters, zero on per-cache stats.
    pub store: StoreSnapshot,
}

impl ExecStats {
    /// Simulated cycles per wall-clock second; 0 when nothing ran.
    pub fn cycles_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.sim_cycles as f64 / secs
        }
    }

    /// One-line human summary for experiment banners.
    pub fn summary(&self) -> String {
        let per_thread = if self.per_thread.is_empty() {
            String::new()
        } else {
            format!(", per-thread runs {:?}", self.per_thread)
        };
        let failures = if self.failed == 0 {
            String::new()
        } else {
            format!(
                ", {} FAILED ({} watchdog)",
                self.failed, self.watchdog_aborted
            )
        };
        let warm = if self.warmups_shared == 0 && self.ckpt_hits == 0 {
            String::new()
        } else {
            format!(
                ", {} warm-ups shared ({} from disk)",
                self.warmups_shared + self.ckpt_hits,
                self.ckpt_hits
            )
        };
        format!(
            "{} simulated, {} memo hits, {:.2}s wall / {:.2}s busy, {:.1} Mcycles/s, queue peak {}{}{}{}",
            self.simulated,
            self.memo_hits,
            self.wall.as_secs_f64(),
            self.busy.as_secs_f64(),
            self.cycles_per_sec() / 1e6,
            self.queue_peak,
            per_thread,
            warm,
            failures,
        )
    }

    /// The stats as a JSON object (the `"executor"` section of emitted
    /// documents).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("threads", Json::uint(threads() as u64)),
            ("simulated_runs", Json::uint(self.simulated)),
            ("memo_hits", Json::uint(self.memo_hits)),
            ("wall_seconds", Json::Num(self.wall.as_secs_f64())),
            ("busy_seconds", Json::Num(self.busy.as_secs_f64())),
            ("sim_cycles", Json::uint(self.sim_cycles)),
            ("sim_cycles_per_sec", Json::Num(self.cycles_per_sec())),
            ("queue_peak", Json::uint(self.queue_peak)),
            (
                "per_thread_runs",
                Json::Arr(self.per_thread.iter().map(|&n| Json::uint(n)).collect()),
            ),
            ("failed_runs", Json::uint(self.failed)),
            ("watchdog_aborted", Json::uint(self.watchdog_aborted)),
            (
                "batch_wall_seconds",
                Json::Num(self.batch_wall.as_secs_f64()),
            ),
            ("warmups_shared", Json::uint(self.warmups_shared)),
            ("ckpt_hits", Json::uint(self.ckpt_hits)),
            (
                "phases",
                Json::obj([
                    ("warmup_seconds", Json::Num(self.phase_warm.as_secs_f64())),
                    (
                        "measure_seconds",
                        Json::Num(self.phase_measure.as_secs_f64()),
                    ),
                    (
                        "snapshot_io_seconds",
                        Json::Num(self.phase_snapshot.as_secs_f64()),
                    ),
                ]),
            ),
            (
                "store",
                Json::obj([
                    ("hits", Json::uint(self.store.hits)),
                    ("misses", Json::uint(self.store.misses)),
                    ("retries", Json::uint(self.store.retries)),
                    ("quarantined", Json::uint(self.store.quarantined)),
                    ("recovered_bytes", Json::uint(self.store.recovered_bytes)),
                    ("write_failures", Json::uint(self.store.write_failures)),
                    ("injected_faults", Json::uint(self.store.injected_faults)),
                ]),
            ),
        ])
    }
}

/// Snapshot of the process-wide executor counters (every [`RunCache`] and
/// [`parallel_map`] contributes).
pub fn global_stats() -> ExecStats {
    ExecStats {
        simulated: G_SIMULATED.load(Ordering::Relaxed),
        memo_hits: G_MEMO_HITS.load(Ordering::Relaxed),
        busy: Duration::from_nanos(G_BUSY_NANOS.load(Ordering::Relaxed)),
        wall: Duration::from_nanos(G_WALL_NANOS.load(Ordering::Relaxed)),
        sim_cycles: G_SIM_CYCLES.load(Ordering::Relaxed),
        queue_peak: G_QUEUE_PEAK.load(Ordering::Relaxed),
        per_thread: Vec::new(),
        failed: G_FAILED.load(Ordering::Relaxed),
        watchdog_aborted: G_WATCHDOG.load(Ordering::Relaxed),
        batch_wall: Duration::from_nanos(G_BATCH_WALL_NANOS.load(Ordering::Relaxed)),
        warmups_shared: crate::ckpt::G_WARMUPS_SHARED.load(Ordering::Relaxed),
        ckpt_hits: crate::ckpt::G_CKPT_HITS.load(Ordering::Relaxed),
        phase_warm: Duration::from_nanos(G_PHASE_WARM_NANOS.load(Ordering::Relaxed)),
        phase_measure: Duration::from_nanos(G_PHASE_MEASURE_NANOS.load(Ordering::Relaxed)),
        phase_snapshot: Duration::from_nanos(G_PHASE_SNAPSHOT_NANOS.load(Ordering::Relaxed)),
        store: psa_common::obs::store::global().snapshot(),
    }
}

/// Map `f` over `items` on the experiment thread pool, preserving input
/// order in the results (and therefore producing output identical to a
/// serial `items.iter().map(f)`).
///
/// Used by experiments whose runs don't fit the `(workload, variant)` memo
/// key — custom Set-Dueling shapes, doubled-storage modules, multi-core
/// mixes. `f` must be pure for the order-independence to hold.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads().min(items.len());
    let started = Instant::now();
    let busy = AtomicU64::new(0);
    let out = if workers <= 1 {
        items
            .iter()
            .map(|item| {
                let t0 = Instant::now();
                let r = f(item);
                busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                r
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let t0 = Instant::now();
                    let r = f(item);
                    busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    *slots[i].lock().expect("unpoisoned slot") = Some(r);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned slot")
                    .expect("slot filled")
            })
            .collect()
    };
    G_QUEUE_PEAK.fetch_max(items.len() as u64, Ordering::Relaxed);
    // Simulated cycles stay 0 here: `R` is opaque, so only the memoising
    // cache can attribute cycles. The job count still counts as executed
    // simulations in every experiment that uses this helper.
    record_global(
        items.len() as u64,
        0,
        Duration::from_nanos(busy.load(Ordering::Relaxed)),
        started.elapsed(),
        0,
    );
    out
}

/// Identity of one custom-configured simulation job — the jobs that do
/// not fit the `(workload, variant)` memo key space (custom Set-Dueling
/// shapes, doubled-storage modules, multi-core mixes). The label joins
/// the workload name in fault-injection matching
/// (`PSA_INJECT_*=<workload>/<label>`) and in the `failures` journal.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The workload driving the run (the first core's, for mixes).
    pub workload: &'static str,
    /// What machine ran, uniquely within the figure (e.g.
    /// `fig11/SPP/ISO Storage`).
    pub label: String,
}

/// The fault-injection environment resolved for one isolated job. The
/// job body must pass its run configuration through [`JobEnv::config`]
/// so an injected stall can take effect.
#[derive(Debug, Clone, Copy)]
pub struct JobEnv {
    stall: bool,
}

impl JobEnv {
    /// `config` with the injected environment applied: a stall injection
    /// drops the watchdog threshold to 1 cycle, so the run aborts via
    /// the watchdog almost immediately.
    pub fn config(&self, config: SimConfig) -> SimConfig {
        let mut config = config;
        if self.stall {
            config.watchdog_cycles = 1;
        }
        config
    }
}

/// [`parallel_map`] with per-job fault isolation, for simulation jobs
/// outside the memoised `(workload, variant)` space.
///
/// Each job is described by `spec` (workload + unique label) and executed
/// by `f` under [`std::panic::catch_unwind`]; `f` reports simulator
/// faults as [`SimError`] values and must thread its `SimConfig` through
/// [`JobEnv::config`]. A failed job yields `None` in its slot — the
/// figure renders the survivors with an explicit gap — and lands in the
/// process-wide failure journal ([`failures_json`]), exactly like a
/// failed memoised job. `PSA_INJECT_PANIC` / `PSA_INJECT_STALL` match
/// `<workload>` or `<workload>/<label>`.
pub fn parallel_map_isolated<T, R, S, F>(items: &[T], spec: S, f: F) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    S: Fn(&T) -> JobSpec + Sync,
    F: Fn(&T, &JobEnv) -> Result<R, SimError> + Sync,
{
    parallel_map(items, |item| {
        let s = spec(item);
        let env = JobEnv {
            stall: inject_match_label("PSA_INJECT_STALL", s.workload, &s.label),
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            if inject_match_label("PSA_INJECT_PANIC", s.workload, &s.label) {
                panic!("injected panic (PSA_INJECT_PANIC)");
            }
            f(item, &env)
        }));
        match result {
            Ok(Ok(r)) => Some(r),
            Ok(Err(e)) => {
                let watchdog = matches!(e, SimError::WatchdogStall(_));
                journal_failure(s.workload, s.label, &e.to_string(), watchdog);
                None
            }
            Err(payload) => {
                journal_failure(
                    s.workload,
                    s.label,
                    &format!("panic: {}", panic_message(payload)),
                    false,
                );
                None
            }
        }
    })
}

/// A memoising single-core run cache: each (workload, variant) simulates
/// once per experiment, no matter how many reductions consume it. Failed
/// jobs are memoised too — a fault is as deterministic as a report, and
/// retrying it would just fail again.
#[derive(Default)]
pub struct RunCache {
    runs: HashMap<(&'static str, Variant), RunOutcome>,
    stats: ExecStats,
}

impl RunCache {
    /// Fresh cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Execution statistics accumulated by this cache.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    fn record(&mut self, simulated: u64, busy: Duration, wall: Duration, cycles: u64) {
        self.stats.simulated += simulated;
        self.stats.busy += busy;
        self.stats.wall += wall;
        self.stats.sim_cycles += cycles;
        record_global(simulated, 0, busy, wall, cycles);
    }

    fn record_batch_wall(&mut self, wall: Duration) {
        self.stats.batch_wall += wall;
        G_BATCH_WALL_NANOS.fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Memoise `outcome`, journalling it (run journal or failure journal)
    /// and bumping the failure counters as appropriate. Returns the
    /// simulated-cycle contribution (0 for failures).
    fn admit(&mut self, name: &'static str, v: Variant, outcome: RunOutcome) -> u64 {
        let cycles = match &outcome {
            RunOutcome::Ok(report) => {
                journal_run(name, v, report);
                report.cycles
            }
            RunOutcome::Failed {
                reason, watchdog, ..
            } => {
                self.stats.failed += 1;
                if *watchdog {
                    self.stats.watchdog_aborted += 1;
                }
                journal_failure(name, v.label(), reason, *watchdog);
                0
            }
        };
        self.runs.insert((name, v), outcome);
        cycles
    }

    /// Simulate every not-yet-cached `(workload, variant)` pair of `jobs`
    /// in parallel (work-queue over `PSA_THREADS` workers), then serve all
    /// of them from the memo. Results are bit-identical to running the
    /// same jobs serially, in any order: each run is independent and owns
    /// its seeded RNG. A panicking or watchdog-stalled job becomes a
    /// [`RunOutcome::Failed`] entry; the rest of the batch completes
    /// unperturbed.
    pub fn run_batch(
        &mut self,
        config: SimConfig,
        jobs: &[(&'static WorkloadSpec, Variant)],
    ) -> usize {
        self.run_batch_with(config, jobs, &|_, _| {})
    }

    /// [`RunCache::run_batch`] over typed [`WorkloadRef`] jobs —
    /// synthetic specs and trace replays mix freely in one batch.
    pub fn run_batch_refs(&mut self, config: SimConfig, jobs: &[(WorkloadRef, Variant)]) -> usize {
        self.run_batch_refs_with(config, jobs, &|_, _| {})
    }

    /// [`RunCache::run_batch`] with a progress hook: `progress(done,
    /// total)` fires after each job of this batch finishes (from worker
    /// threads, concurrently, on the parallel path — `done` values may
    /// arrive out of order, but each value 1..=total fires exactly once
    /// and `total` is the batch's not-yet-cached job count). The hook
    /// must not panic; it runs inside the worker loop.
    pub fn run_batch_with(
        &mut self,
        config: SimConfig,
        jobs: &[(&'static WorkloadSpec, Variant)],
        progress: &(dyn Fn(u64, u64) + Sync),
    ) -> usize {
        let jobs: Vec<(WorkloadRef, Variant)> = jobs
            .iter()
            .map(|&(w, v)| (WorkloadRef::from(w), v))
            .collect();
        self.run_batch_refs_with(config, &jobs, progress)
    }

    /// [`RunCache::run_batch_with`] over typed [`WorkloadRef`] jobs —
    /// the executor's real entry point; the spec-based form is sugar.
    pub fn run_batch_refs_with(
        &mut self,
        config: SimConfig,
        jobs: &[(WorkloadRef, Variant)],
        progress: &(dyn Fn(u64, u64) + Sync),
    ) -> usize {
        let mut todo: Vec<(WorkloadRef, Variant)> = Vec::new();
        let mut queued: std::collections::HashSet<(&'static str, Variant)> =
            std::collections::HashSet::new();
        for &(w, v) in jobs {
            if !self.runs.contains_key(&(w.name(), v)) && queued.insert((w.name(), v)) {
                todo.push((w, v));
            }
        }
        if todo.is_empty() {
            return 0;
        }
        self.stats.queue_peak = self.stats.queue_peak.max(todo.len() as u64);
        G_QUEUE_PEAK.fetch_max(todo.len() as u64, Ordering::Relaxed);

        let workers = threads().min(todo.len());
        let started = Instant::now();
        if workers <= 1 {
            let mut busy = Duration::ZERO;
            let mut cycles = 0;
            for (i, &(w, v)) in todo.iter().enumerate() {
                let t0 = Instant::now();
                let outcome = run_job(config, w, v);
                busy += t0.elapsed();
                cycles += self.admit(w.name(), v, outcome);
                progress(i as u64 + 1, todo.len() as u64);
            }
            if self.stats.per_thread.is_empty() {
                self.stats.per_thread = vec![0];
            }
            self.stats.per_thread[0] += todo.len() as u64;
            self.record_batch_wall(started.elapsed());
            self.record(todo.len() as u64, busy, started.elapsed(), cycles);
            return todo.len();
        }

        let next = AtomicUsize::new(0);
        let finished = AtomicU64::new(0);
        let done: Mutex<Vec<(usize, RunOutcome, Duration)>> = Mutex::new(Vec::new());
        let mut thread_runs = vec![0u64; workers];
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, RunOutcome, Duration)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(w, v)) = todo.get(i) else { break };
                            let t0 = Instant::now();
                            let outcome = run_job(config, w, v);
                            local.push((i, outcome, t0.elapsed()));
                            let done_now = finished.fetch_add(1, Ordering::Relaxed) + 1;
                            progress(done_now, todo.len() as u64);
                        }
                        let count = local.len() as u64;
                        done.lock().expect("unpoisoned results").extend(local);
                        count
                    })
                })
                .collect();
            for (t, handle) in handles.into_iter().enumerate() {
                thread_runs[t] = handle.join().expect("worker panicked");
            }
        });

        let mut results = done.into_inner().expect("unpoisoned results");
        results.sort_by_key(|&(i, _, _)| i);
        let mut busy = Duration::ZERO;
        let mut cycles = 0;
        let n = results.len();
        for (i, outcome, dur) in results {
            busy += dur;
            let (w, v) = todo[i];
            cycles += self.admit(w.name(), v, outcome);
        }
        if self.stats.per_thread.len() < workers {
            self.stats.per_thread.resize(workers, 0);
        }
        for (t, &count) in thread_runs.iter().enumerate() {
            self.stats.per_thread[t] += count;
        }
        self.record_batch_wall(started.elapsed());
        self.record(n as u64, busy, started.elapsed(), cycles);
        n
    }

    /// Simulate (or recall) `workload` under `variant`, keeping the fault
    /// as a value.
    pub fn outcome(
        &mut self,
        config: SimConfig,
        workload: &'static WorkloadSpec,
        variant: Variant,
    ) -> &RunOutcome {
        self.outcome_ref(config, WorkloadRef::from(workload), variant)
    }

    /// [`RunCache::outcome`] over a typed [`WorkloadRef`].
    pub fn outcome_ref(
        &mut self,
        config: SimConfig,
        workload: WorkloadRef,
        variant: Variant,
    ) -> &RunOutcome {
        if self.runs.contains_key(&(workload.name(), variant)) {
            self.stats.memo_hits += 1;
            G_MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        } else {
            let t0 = Instant::now();
            let outcome = run_job(config, workload, variant);
            let dur = t0.elapsed();
            let cycles = self.admit(workload.name(), variant, outcome);
            if self.stats.per_thread.is_empty() {
                self.stats.per_thread = vec![0];
            }
            self.stats.per_thread[0] += 1;
            self.record(1, dur, dur, cycles);
        }
        &self.runs[&(workload.name(), variant)]
    }

    /// Whether `(workload, variant)` is cached with a completed report —
    /// figures use this to render explicit gaps for failed jobs.
    pub fn completed(&self, workload: &'static WorkloadSpec, variant: Variant) -> bool {
        self.completed_name(workload.name, variant)
    }

    /// [`RunCache::completed`] keyed by workload name (what the memo
    /// actually keys on; trace names embed their content hash).
    pub fn completed_name(&self, name: &'static str, variant: Variant) -> bool {
        matches!(self.runs.get(&(name, variant)), Some(RunOutcome::Ok(_)))
    }

    /// [`RunCache::completed`] over a typed [`WorkloadRef`].
    pub fn completed_ref(&self, workload: WorkloadRef, variant: Variant) -> bool {
        self.completed_name(workload.name(), variant)
    }

    /// The subset of `refs` for which every listed variant completed —
    /// the ref-based analogue of [`RunCache::surviving`].
    pub fn surviving_refs(&self, refs: &[WorkloadRef], variants: &[Variant]) -> Vec<WorkloadRef> {
        refs.iter()
            .filter(|r| variants.iter().all(|&v| self.completed_ref(**r, v)))
            .copied()
            .collect()
    }

    /// The subset of `workloads` for which every listed variant completed
    /// (after a `run_batch` of the cross product): the rows a figure can
    /// still render. A shrunken result is the "partial results with
    /// explicit gaps" contract — the failures themselves are in
    /// [`failures_json`].
    pub fn surviving<'w>(
        &self,
        workloads: &[&'w WorkloadSpec],
        variants: &[Variant],
    ) -> Vec<&'w WorkloadSpec>
    where
        'w: 'static,
    {
        workloads
            .iter()
            .filter(|w| variants.iter().all(|&v| self.completed(w, v)))
            .copied()
            .collect()
    }

    /// Simulate (or recall) `workload` under `variant`.
    ///
    /// # Panics
    ///
    /// Panics (with the recorded reason) when the job failed — callers
    /// that tolerate gaps use [`RunCache::outcome`] / [`RunCache::completed`].
    pub fn run(
        &mut self,
        config: SimConfig,
        workload: &'static WorkloadSpec,
        variant: Variant,
    ) -> &RunReport {
        self.run_ref(config, WorkloadRef::from(workload), variant)
    }

    /// [`RunCache::run`] over a typed [`WorkloadRef`].
    ///
    /// # Panics
    ///
    /// Panics (with the recorded reason) when the job failed.
    pub fn run_ref(
        &mut self,
        config: SimConfig,
        workload: WorkloadRef,
        variant: Variant,
    ) -> &RunReport {
        match self.outcome_ref(config, workload, variant) {
            RunOutcome::Ok(report) => report,
            RunOutcome::Failed {
                workload,
                variant,
                reason,
                ..
            } => panic!("run {}/{} failed: {reason}", workload, variant.label()),
        }
    }

    /// IPC ratio of `num` over `den` for one workload.
    pub fn speedup(
        &mut self,
        config: SimConfig,
        workload: &'static WorkloadSpec,
        num: Variant,
        den: Variant,
    ) -> f64 {
        self.speedup_ref(config, WorkloadRef::from(workload), num, den)
    }

    /// [`RunCache::speedup`] over a typed [`WorkloadRef`].
    pub fn speedup_ref(
        &mut self,
        config: SimConfig,
        workload: WorkloadRef,
        num: Variant,
        den: Variant,
    ) -> f64 {
        let n = self.run_ref(config, workload, num).ipc();
        let d = self.run_ref(config, workload, den).ipc();
        if d <= 0.0 {
            1.0
        } else {
            n / d
        }
    }

    /// Every cached completed run as a JSON array of
    /// `{workload, variant, report}`, sorted by (workload, variant label)
    /// for stable output. Failed jobs are in [`failures_json`], not here.
    pub fn runs_json(&self) -> Json {
        let mut entries: Vec<(&'static str, String, &RunReport)> = self
            .runs
            .iter()
            .filter_map(|(&(w, v), outcome)| outcome.report().map(|r| (w, v.label(), r)))
            .collect();
        entries.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        Json::Arr(
            entries
                .into_iter()
                .map(|(w, label, r)| {
                    Json::obj([
                        ("workload", Json::str(w)),
                        ("variant", Json::str(label)),
                        ("report", report::run_report(r)),
                    ])
                })
                .collect(),
        )
    }
}

/// The current `BENCH_*.json` document schema version (see
/// docs/METRICS.md for the version history).
pub const BENCH_SCHEMA_VERSION: u64 = 4;

/// Assemble the standard `BENCH_<figure>.json` document: schema version,
/// figure id and title, the run configuration, the figure-specific `rows`,
/// the process-wide `failures` journal (empty on a clean process), and
/// the process-wide executor statistics. With `PSA_JSON_RUNS=1` the raw
/// per-run reports executed so far ride along under `"runs"` (see
/// [`journal_json`]).
pub fn doc(figure: &str, title: &str, settings: &Settings, rows: Json) -> Json {
    doc_with_failures(figure, title, settings, rows, failures_json())
}

/// [`doc`] with a caller-supplied `failures` array — for long-lived
/// processes that scope failures to one job via [`failures_mark`] /
/// [`failures_json_since`] instead of embedding the whole process
/// journal.
pub fn doc_with_failures(
    figure: &str,
    title: &str,
    settings: &Settings,
    rows: Json,
    failures: Json,
) -> Json {
    let mut doc = Json::obj([
        ("schema_version", Json::uint(BENCH_SCHEMA_VERSION)),
        ("figure", Json::str(figure)),
        ("title", Json::str(title)),
        ("config", report::sim_config(&settings.config)),
        ("rows", rows),
        ("failures", failures),
        ("executor", global_stats().to_json()),
    ]);
    if json_runs_enabled() {
        doc.push("runs", journal_json());
    }
    doc
}

/// Serialises tests (across the whole crate) that mutate process-global
/// environment variables such as `PSA_WORKLOAD_LIMIT` or `PSA_THREADS`.
#[cfg(test)]
pub(crate) fn test_env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::test_env_lock as env_lock;
    use super::*;

    fn quick() -> SimConfig {
        SimConfig::default()
            .with_warmup(1_000)
            .with_instructions(4_000)
    }

    #[test]
    fn cache_memoises_and_counts() {
        let mut cache = RunCache::new();
        let w = catalog::workload("lbm").unwrap();
        let a = cache.run(quick(), w, Variant::NoPrefetch).ipc();
        let b = cache.run(quick(), w, Variant::NoPrefetch).ipc();
        assert_eq!(a, b);
        assert_eq!(cache.runs.len(), 1);
        // The second run() must be a memo hit, not a re-simulation.
        assert_eq!(cache.stats().simulated, 1);
        assert_eq!(cache.stats().memo_hits, 1);
    }

    #[test]
    fn batch_skips_cached_and_duplicate_jobs() {
        let mut cache = RunCache::new();
        let w = catalog::workload("lbm").unwrap();
        cache.run(quick(), w, Variant::NoPrefetch);
        let jobs = vec![
            (w, Variant::NoPrefetch), // already cached
            (w, Variant::Pref(PrefetcherKind::Spp, PageSizePolicy::Psa)),
            (w, Variant::Pref(PrefetcherKind::Spp, PageSizePolicy::Psa)), // duplicate
        ];
        assert_eq!(cache.run_batch(quick(), &jobs), 1);
        assert_eq!(cache.stats().simulated, 2);
    }

    #[test]
    fn parallel_matches_serial() {
        let workloads: Vec<&'static WorkloadSpec> = ["lbm", "milc", "soplex"]
            .iter()
            .map(|n| catalog::workload(n).unwrap())
            .collect();
        let variants = [
            Variant::NoPrefetch,
            Variant::Pref(PrefetcherKind::Spp, PageSizePolicy::Psa),
            Variant::L1d(L1dPrefKind::NextLine),
        ];
        let jobs: Vec<(&'static WorkloadSpec, Variant)> = workloads
            .iter()
            .flat_map(|&w| variants.iter().map(move |&v| (w, v)))
            .collect();

        let _guard = env_lock();
        // Serial reference.
        let mut serial = RunCache::new();
        std::env::set_var("PSA_THREADS", "1");
        serial.run_batch(quick(), &jobs);
        // Parallel (work-queue over at least 3 workers).
        std::env::set_var("PSA_THREADS", "3");
        let mut parallel = RunCache::new();
        parallel.run_batch(quick(), &jobs);
        std::env::remove_var("PSA_THREADS");

        for &(w, v) in &jobs {
            let a = serial.run(quick(), w, v).clone();
            let b = parallel.run(quick(), w, v).clone();
            assert_eq!(
                a,
                b,
                "{}/{} diverged between serial and parallel",
                w.name,
                v.label()
            );
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let _guard = env_lock();
        let items: Vec<u64> = (0..37).collect();
        std::env::set_var("PSA_THREADS", "4");
        let out = parallel_map(&items, |&x| x * x);
        std::env::remove_var("PSA_THREADS");
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn speedup_is_ratio() {
        let mut cache = RunCache::new();
        let w = catalog::workload("lbm").unwrap();
        let s = cache.speedup(
            quick(),
            w,
            Variant::Pref(PrefetcherKind::Spp, PageSizePolicy::Psa),
            Variant::NoPrefetch,
        );
        assert!(s > 0.1 && s < 10.0, "speedup {s}");
    }

    #[test]
    fn workload_selection_honours_limit() {
        let _guard = env_lock();
        let settings = Settings::default();
        let all = settings.workloads();
        assert_eq!(all.len(), 80);
        std::env::set_var("PSA_WORKLOAD_LIMIT", "10");
        let some = settings.workloads();
        std::env::remove_var("PSA_WORKLOAD_LIMIT");
        assert!(some.len() <= 10 && some.len() >= 8, "got {}", some.len());
    }

    #[test]
    fn runs_json_and_doc_are_well_formed() {
        let mut cache = RunCache::new();
        let w = catalog::workload("lbm").unwrap();
        cache.run(
            quick(),
            w,
            Variant::Pref(PrefetcherKind::Spp, PageSizePolicy::PsaSd),
        );
        let runs = cache.runs_json();
        let entry = &runs.as_arr().unwrap()[0];
        assert_eq!(entry.get("workload").unwrap().as_str(), Some("lbm"));
        assert_eq!(entry.get("variant").unwrap().as_str(), Some("SPP-PSA-SD"));
        assert!(entry.get("report").unwrap().get("ipc").is_some());

        let settings = Settings { config: quick() };
        let doc = doc("figXX", "smoke", &settings, Json::Arr(vec![]));
        for field in [
            "schema_version",
            "figure",
            "title",
            "config",
            "rows",
            "failures",
            "executor",
        ] {
            assert!(doc.get(field).is_some(), "missing {field}");
        }
        assert_eq!(doc.get("schema_version").unwrap(), &Json::uint(4));
        // Schema v3: the executor section carries the phase profile.
        let phases = doc.get("executor").unwrap().get("phases").unwrap();
        for field in ["warmup_seconds", "measure_seconds", "snapshot_io_seconds"] {
            assert!(phases.get(field).is_some(), "missing phases.{field}");
        }
        // Schema v4: the executor section carries the store counters.
        let store = doc.get("executor").unwrap().get("store").unwrap();
        for field in [
            "hits",
            "misses",
            "retries",
            "quarantined",
            "recovered_bytes",
            "write_failures",
            "injected_faults",
        ] {
            assert!(store.get(field).is_some(), "missing store.{field}");
        }
        // Round-trips through the hand-rolled parser.
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn phase_profile_accounts_for_run_time() {
        let mut cache = RunCache::new();
        let w = catalog::workload("astar").unwrap();
        cache.run(quick(), w, Variant::NoPrefetch);
        let stats = global_stats();
        // This process just simulated a warm-up and a measured run, so
        // both phases must have accumulated wall time.
        assert!(stats.phase_warm > Duration::ZERO, "warm phase untimed");
        assert!(
            stats.phase_measure > Duration::ZERO,
            "measure phase untimed"
        );
    }

    #[test]
    fn strict_env_parsing_reports_the_offender() {
        let _guard = env_lock();
        std::env::set_var("PSA_THREADS", "banana");
        let e = try_threads().unwrap_err();
        std::env::remove_var("PSA_THREADS");
        match e {
            SimError::EnvVar { var, value, .. } => {
                assert_eq!(var, "PSA_THREADS");
                assert_eq!(value, "banana");
            }
            other => panic!("expected EnvVar, got {other}"),
        }

        // Settings::default() would itself panic on a malformed variable
        // (it routes through RunnerOptions::from_env), so probe the
        // fallible accessors on an explicit value.
        let settings = Settings { config: quick() };
        std::env::set_var("PSA_WORKLOAD_LIMIT", "0");
        let e = settings.try_workloads().unwrap_err();
        std::env::remove_var("PSA_WORKLOAD_LIMIT");
        assert!(e.to_string().contains("PSA_WORKLOAD_LIMIT"), "{e}");

        std::env::set_var("PSA_MIXES", "-3");
        let e = settings.try_mixes().unwrap_err();
        std::env::remove_var("PSA_MIXES");
        assert!(e.to_string().contains("-3"), "{e}");

        // The consolidated reader is just as strict, for every knob kind:
        // flags, u64 budgets, and the u32 observability shape.
        for (var, value) in [
            ("PSA_OBS", "yes"),
            ("PSA_CHECK", "true"),
            ("PSA_WARMUP", "10k"),
            ("PSA_OBS_RING", "0"),
            ("PSA_OBS_SAMPLE", "-1"),
            ("PSA_CKPT_DISK_MB", "0"),
            ("PSA_CKPT_LAYOUT", "shallow"),
            ("PSA_FAULT_PLAN", "torn=2.0"),
        ] {
            std::env::set_var(var, value);
            let e = RunnerOptions::from_env().unwrap_err();
            std::env::remove_var(var);
            let msg = e.to_string();
            assert!(msg.contains(var) && msg.contains(value), "{msg}");
        }
    }

    #[test]
    fn runner_options_read_the_whole_environment() {
        let _guard = env_lock();
        for (var, value) in [
            ("PSA_THREADS", "3"),
            ("PSA_WARMUP", "500"),
            ("PSA_INSTRUCTIONS", "2000"),
            ("PSA_WATCHDOG", "0"),
            ("PSA_CHECK", "1"),
            ("PSA_JSON_RUNS", "1"),
            ("PSA_CKPT_MEM_MB", "64"),
            ("PSA_CKPT_DIR", "/tmp/ckpt"),
            ("PSA_CKPT_DISK_MB", "512"),
            ("PSA_CKPT_LAYOUT", "flat"),
            ("PSA_FAULT_PLAN", "seed=3,eio=0.1"),
            ("PSA_INJECT_PANIC", "lbm"),
            ("PSA_OBS", "1"),
            ("PSA_OBS_RING", "128"),
            ("PSA_OBS_SAMPLE", "4"),
            ("PSA_OBS_TRACE", "/tmp/trace.json"),
        ] {
            std::env::set_var(var, value);
        }
        let opts = RunnerOptions::from_env();
        for var in [
            "PSA_THREADS",
            "PSA_WARMUP",
            "PSA_INSTRUCTIONS",
            "PSA_WATCHDOG",
            "PSA_CHECK",
            "PSA_JSON_RUNS",
            "PSA_CKPT_MEM_MB",
            "PSA_CKPT_DIR",
            "PSA_CKPT_DISK_MB",
            "PSA_CKPT_LAYOUT",
            "PSA_FAULT_PLAN",
            "PSA_INJECT_PANIC",
            "PSA_OBS",
            "PSA_OBS_RING",
            "PSA_OBS_SAMPLE",
            "PSA_OBS_TRACE",
        ] {
            std::env::remove_var(var);
        }
        let opts = opts.expect("every variable parses");
        assert_eq!(opts.threads, Some(3));
        assert_eq!(opts.effective_threads(), 3);
        assert_eq!((opts.warmup, opts.instructions), (Some(500), Some(2000)));
        assert_eq!(opts.watchdog, Some(0));
        assert_eq!(opts.check, Some(true));
        assert!(opts.json_runs);
        assert_eq!(opts.ckpt_mem_mb, Some(64));
        assert_eq!(
            opts.ckpt_dir.as_deref(),
            Some(std::path::Path::new("/tmp/ckpt"))
        );
        assert_eq!(opts.ckpt_disk_mb, Some(512));
        assert_eq!(opts.ckpt_layout, Some(CkptLayout::Flat));
        assert_eq!(opts.fault_plan.as_deref(), Some("seed=3,eio=0.1"));
        assert_eq!(opts.inject_panic.as_deref(), Some("lbm"));
        let obs = opts.obs.expect("PSA_OBS* sets the obs shape");
        assert!(obs.enabled);
        assert_eq!((obs.ring_capacity, obs.sample_every), (128, 4));
        assert_eq!(
            opts.obs_trace.as_deref(),
            Some(std::path::Path::new("/tmp/trace.json"))
        );

        // apply() threads the run-shape subset into a SimConfig…
        let cfg = opts.apply(SimConfig::default());
        assert_eq!((cfg.warmup, cfg.instructions), (500, 2000));
        assert_eq!(cfg.watchdog_cycles, 0);
        assert!(cfg.check);
        assert_eq!(cfg.obs, obs);
        // …while an empty options value leaves the config untouched.
        let untouched = RunnerOptions::default().apply(cfg);
        assert_eq!(untouched.warmup, cfg.warmup);
        assert_eq!(untouched.obs, cfg.obs);
        assert!(untouched.check);
    }

    #[test]
    fn programmatic_options_override_the_environment() {
        let _guard = env_lock();
        std::env::set_var("PSA_WARMUP", "111");
        std::env::set_var("PSA_OBS", "1");
        let opts = RunnerOptions::from_env();
        std::env::remove_var("PSA_WARMUP");
        std::env::remove_var("PSA_OBS");
        let opts = opts
            .expect("clean parse")
            .with_warmup(222)
            .with_obs(ObsConfig::default());
        let cfg = opts.apply(SimConfig::default());
        assert_eq!(cfg.warmup, 222);
        assert!(!cfg.obs.enabled, "builder beat the PSA_OBS=1 in the env");
    }

    #[test]
    fn unknown_workload_is_a_value_not_a_panic() {
        assert!(matches!(
            workload("nope"),
            Err(SimError::UnknownWorkload { .. })
        ));
        assert_eq!(workload("lbm").unwrap().name, "lbm");
    }

    #[test]
    fn injected_panic_is_isolated_and_memoised() {
        let _guard = env_lock();
        let lbm = catalog::workload("lbm").unwrap();
        let milc = catalog::workload("milc").unwrap();

        // Clean reference for the job that survives the faulty batch.
        let mut clean = RunCache::new();
        let reference = clean.run(quick(), milc, Variant::NoPrefetch).clone();

        std::env::set_var("PSA_INJECT_PANIC", "lbm/no-prefetch");
        let mut cache = RunCache::new();
        cache.run_batch(
            quick(),
            &[(lbm, Variant::NoPrefetch), (milc, Variant::NoPrefetch)],
        );
        // The panicking job became a Failed value; the batch completed and
        // the surviving run is bit-identical to the clean reference.
        match cache.outcome(quick(), lbm, Variant::NoPrefetch) {
            RunOutcome::Failed {
                reason, watchdog, ..
            } => {
                assert!(reason.contains("injected panic"), "{reason}");
                assert!(!watchdog);
            }
            RunOutcome::Ok(_) => panic!("injected panic was not recorded"),
        }
        assert_eq!(cache.run(quick(), milc, Variant::NoPrefetch), &reference);
        assert_eq!(cache.stats().failed, 1);
        assert_eq!(
            cache.surviving(&[lbm, milc], &[Variant::NoPrefetch]),
            vec![milc]
        );
        // Faults are deterministic, so the failure is memoised: asking
        // again (even with the injection cleared) must not re-simulate.
        std::env::remove_var("PSA_INJECT_PANIC");
        let hits = cache.stats().memo_hits;
        assert!(!cache.completed(lbm, Variant::NoPrefetch));
        assert!(matches!(
            cache.outcome(quick(), lbm, Variant::NoPrefetch),
            RunOutcome::Failed { .. }
        ));
        assert_eq!(cache.stats().memo_hits, hits + 1);
        // The process-wide failure journal picked the fault up.
        let failures = failures_json();
        let arr = failures.as_arr().unwrap();
        assert!(arr.iter().any(|f| {
            f.get("workload").unwrap().as_str() == Some("lbm")
                && f.get("variant").unwrap().as_str() == Some("no-prefetch")
        }));
    }

    #[test]
    fn injected_stall_trips_the_watchdog() {
        let _guard = env_lock();
        std::env::set_var("PSA_INJECT_STALL", "lbm/no-prefetch");
        let outcome = run_job(
            quick(),
            catalog::workload("lbm").unwrap().into(),
            Variant::NoPrefetch,
        );
        std::env::remove_var("PSA_INJECT_STALL");
        match outcome {
            RunOutcome::Failed {
                reason, watchdog, ..
            } => {
                assert!(watchdog);
                assert!(reason.contains("no retire/drain progress"), "{reason}");
            }
            RunOutcome::Ok(_) => panic!("stall injection did not trip the watchdog"),
        }
    }

    #[test]
    fn variant_labels_are_stable() {
        assert_eq!(Variant::NoPrefetch.label(), "no-prefetch");
        assert_eq!(
            Variant::Pref(PrefetcherKind::Spp, PageSizePolicy::PsaSd).label(),
            "SPP-PSA-SD"
        );
        assert_eq!(
            Variant::PrefMagic(PrefetcherKind::Spp, PageSizePolicy::Psa).label(),
            "SPP-Magic-PSA"
        );
        assert_eq!(
            Variant::L1d(L1dPrefKind::IpcpPlusPlus).label(),
            "L1D-IPCP++"
        );
    }
}
