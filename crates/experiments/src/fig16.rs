//! Figure 16 (repo extension): the new prefetcher families — Pangloss
//! and DSPatch — run through the full page-size-awareness matrix next to
//! SPP, the paper's primary vehicle.
//!
//! For each family the figure reports the geomean speedup of every PSA
//! policy (PSA, PSA-2MB, PSA-SD) **and** the PSA Magic oracle over that
//! family's own Original implementation, per suite group and over all
//! workloads — Figure 9's shape, extended with the oracle column and
//! pointed at genuinely different prediction structures: SPP walks
//! delta signatures, Pangloss walks a Markov chain of compressed
//! deltas, DSPatch replays dueling spatial bit patterns.

use psa_common::{geomean, table::pct, Table};
use psa_core::PageSizePolicy;
use psa_prefetchers::PrefetcherKind;
use psa_sim::Json;
use psa_traces::{SuiteGroup, WorkloadSpec};

use crate::runner::{self, RunCache, Settings, Variant};

/// The families compared: the paper's vehicle plus the two extensions.
pub const FAMILIES: [PrefetcherKind; 3] = [
    PrefetcherKind::Spp,
    PrefetcherKind::Pangloss,
    PrefetcherKind::Dspatch,
];

/// Geomean speedups for one (family, variant) cell.
#[derive(Debug, Clone)]
pub struct Fig16Cell {
    /// Prefetcher family.
    pub kind: PrefetcherKind,
    /// The measured variant (a PSA policy or the Magic oracle).
    pub variant: Variant,
    /// Geomean per group, in [SPEC, GAP+ML+CLOUD, QMM] order.
    pub per_group: [f64; 3],
    /// Geomean across all workloads.
    pub all: f64,
}

const GROUPS: [SuiteGroup; 3] = [SuiteGroup::Spec, SuiteGroup::GapMlCloud, SuiteGroup::Qmm];

/// The measured (non-baseline) variants of one family, in column order.
fn measured(kind: PrefetcherKind) -> [Variant; 4] {
    [
        Variant::Pref(kind, PageSizePolicy::Psa),
        Variant::Pref(kind, PageSizePolicy::Psa2m),
        Variant::Pref(kind, PageSizePolicy::PsaSd),
        Variant::PrefMagic(kind, PageSizePolicy::Psa),
    ]
}

/// Run the full sweep over the given workloads.
pub fn collect_over(settings: &Settings, workloads: &[&'static WorkloadSpec]) -> Vec<Fig16Cell> {
    let mut out = Vec::new();
    for kind in FAMILIES {
        let mut cache = RunCache::new();
        let base = Variant::Pref(kind, PageSizePolicy::Original);
        let mut variants = vec![base];
        variants.extend(measured(kind));
        let jobs: Vec<_> = workloads
            .iter()
            .flat_map(|&w| variants.iter().map(move |&v| (w, v)))
            .collect();
        cache.run_batch(settings.config, &jobs);
        // A failed workload drops out of every geomean for this family;
        // the fault is recorded in the document's `failures` array.
        let survivors = cache.surviving(workloads, &variants);
        for variant in measured(kind) {
            let speedups: Vec<(SuiteGroup, f64)> = survivors
                .iter()
                .map(|w| {
                    (
                        w.suite.group(),
                        cache.speedup(settings.config, w, variant, base),
                    )
                })
                .collect();
            let per_group = GROUPS.map(|g| {
                geomean(
                    &speedups
                        .iter()
                        .filter(|(sg, _)| *sg == g)
                        .map(|(_, s)| *s)
                        .collect::<Vec<_>>(),
                )
            });
            let all = geomean(&speedups.iter().map(|(_, s)| *s).collect::<Vec<_>>());
            out.push(Fig16Cell {
                kind,
                variant,
                per_group,
                all,
            });
        }
    }
    out
}

/// Run over the standard workload selection.
pub fn collect(settings: &Settings) -> Vec<Fig16Cell> {
    collect_over(settings, &settings.workloads())
}

/// Render the figure.
pub fn run(settings: &Settings) -> String {
    render(&collect(settings))
}

/// Text rendering plus the `BENCH_fig16.json` document.
pub fn report(settings: &Settings) -> (String, Json) {
    let cells = collect(settings);
    let text = render(&cells);
    let doc = runner::doc(
        "fig16",
        "new families (Pangloss, DSPatch) vs SPP, geomean speedup over each family's original",
        settings,
        cells_json(&cells),
    );
    (text, doc)
}

/// Cells as JSON rows.
pub fn cells_json(cells: &[Fig16Cell]) -> Json {
    Json::Arr(
        cells
            .iter()
            .map(|c| {
                Json::obj([
                    ("prefetcher", Json::str(c.kind.name())),
                    ("variant", Json::str(c.variant.label())),
                    ("spec_geomean", Json::Num(c.per_group[0])),
                    ("gap_ml_cloud_geomean", Json::Num(c.per_group[1])),
                    ("qmm_geomean", Json::Num(c.per_group[2])),
                    ("all_geomean", Json::Num(c.all)),
                ])
            })
            .collect(),
    )
}

/// Render a cell list.
pub fn render(cells: &[Fig16Cell]) -> String {
    let mut t = Table::new(vec![
        "prefetcher".into(),
        "variant".into(),
        "SPEC".into(),
        "GAP+ML+CLOUD".into(),
        "QMM".into(),
        "ALL".into(),
    ]);
    for c in cells {
        t.row(vec![
            c.kind.name().into(),
            c.variant.label(),
            pct((c.per_group[0] - 1.0) * 100.0),
            pct((c.per_group[1] - 1.0) * 100.0),
            pct((c.per_group[2] - 1.0) * 100.0),
            pct((c.all - 1.0) * 100.0),
        ]);
    }
    format!(
        "Figure 16 — new families vs SPP, geomean speedup over each family's original (%)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psa_sim::SimConfig;

    #[test]
    fn new_families_complete_the_matrix_on_a_small_slice() {
        let _guard = crate::runner::test_env_lock();
        std::env::set_var("PSA_WORKLOAD_LIMIT", "4");
        let settings = Settings {
            config: SimConfig::default()
                .with_warmup(2_000)
                .with_instructions(8_000),
        };
        let cells = collect(&settings);
        std::env::remove_var("PSA_WORKLOAD_LIMIT");
        assert_eq!(cells.len(), FAMILIES.len() * 4);
        for c in &cells {
            assert!(
                c.all > 0.2 && c.all < 5.0,
                "{} {}: implausible speedup {}",
                c.kind,
                c.variant.label(),
                c.all
            );
        }
        // The Magic oracle can never *lose* to PPM by resolving page
        // sizes late — sanity-check it stays in the same ballpark.
        for kind in FAMILIES {
            let by = |v: Variant| cells.iter().find(|c| c.variant == v).map(|c| c.all);
            let psa = by(Variant::Pref(kind, PageSizePolicy::Psa)).unwrap();
            let magic = by(Variant::PrefMagic(kind, PageSizePolicy::Psa)).unwrap();
            assert!(
                (psa - magic).abs() < 0.5,
                "{kind}: PPM {psa} vs Magic {magic} diverge wildly"
            );
        }
    }
}
