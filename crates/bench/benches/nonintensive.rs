//! §VI-B1: the non-intensive workload augmentation ("no harm" check).

use psa_experiments::{nonintensive, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("§VI-B1 non-intensive augmentation", &settings);
    let (text, doc) = nonintensive::report(&settings);
    println!("{text}");
    psa_bench::emit_json("nonintensive", &doc);
}
