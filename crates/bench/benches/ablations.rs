//! Set-Dueling shape ablations (dedicated sets, Csel width).

use psa_experiments::{ablations, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Ablations — Set-Dueling shape", &settings);
    println!("{}", ablations::run(&settings));
}
