//! Set-Dueling shape ablations (dedicated sets, Csel width).

use psa_experiments::{ablations, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Ablations — Set-Dueling shape", &settings);
    let (text, doc) = ablations::report(&settings);
    println!("{text}");
    psa_bench::emit_json("ablations", &doc);
}
