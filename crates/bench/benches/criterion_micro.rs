//! Criterion microbenches of the hot paths: prefetcher training/issue and
//! the composite PSA module, at both indexing grains.

use criterion::{criterion_group, criterion_main, Criterion};
use psa_common::{PLine, PageSize, VAddr};
use psa_core::ppm::PageSizeSource;
use psa_core::{
    AccessContext, IndexGrain, ModuleConfig, PageSizePolicy, PsaModule, SdConfig,
};
use psa_prefetchers::PrefetcherKind;
use std::hint::black_box;

fn ctx(line: u64) -> AccessContext {
    AccessContext {
        line: PLine::new(line),
        pc: VAddr::new(0x400),
        cache_hit: false,
        page_size: PageSize::Size2M,
    }
}

fn prefetcher_on_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetcher_on_access");
    for kind in PrefetcherKind::EVALUATED {
        for grain in [IndexGrain::Page4K, IndexGrain::Page2M] {
            let mut p = kind.build(grain);
            let mut out = Vec::with_capacity(64);
            let mut line = 0u64;
            group.bench_function(format!("{kind}/{grain}"), |b| {
                b.iter(|| {
                    out.clear();
                    line = line.wrapping_add(3) & 0xf_ffff;
                    p.on_access(black_box(&ctx(line)), &mut out);
                    black_box(out.len())
                })
            });
        }
    }
    group.finish();
}

fn module_on_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("psa_module_on_access");
    for policy in PageSizePolicy::ALL {
        let mut module = PsaModule::new(
            policy,
            PageSizeSource::Ppm,
            &|grain| PrefetcherKind::Spp.build(grain),
            1024,
            SdConfig::default(),
            ModuleConfig::default(),
        )
        .expect("module shape");
        let mut out = Vec::with_capacity(16);
        let mut line = 0u64;
        group.bench_function(format!("SPP{}", policy.suffix()), |b| {
            b.iter(|| {
                out.clear();
                line = line.wrapping_add(1) & 0xf_ffff;
                module.on_access(
                    black_box(PLine::new(line)),
                    VAddr::new(0x400),
                    false,
                    true,
                    PageSize::Size2M,
                    (line as usize) & 1023,
                    &|_| false,
                    &mut out,
                );
                black_box(out.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, prefetcher_on_access, module_on_access);
criterion_main!(benches);
