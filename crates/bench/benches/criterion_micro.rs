//! Microbenches of the hot paths: prefetcher training/issue and the
//! composite PSA module, at both indexing grains.
//!
//! Hand-rolled timing (median of repeated batches over a monotonic clock)
//! so the workspace needs no external bench framework and builds with no
//! registry access. Throughput numbers are indicative, not
//! statistically rigorous — use them to compare hot paths, not machines.

use psa_common::{PLine, PageSize, VAddr};
use psa_core::ppm::PageSizeSource;
use psa_core::{AccessContext, IndexGrain, ModuleConfig, PageSizePolicy, PsaModule, SdConfig};
use psa_prefetchers::PrefetcherKind;
use std::hint::black_box;
use std::time::Instant;

const BATCH: u64 = 10_000;
const SAMPLES: usize = 15;

/// Time `f` over [`SAMPLES`] batches of [`BATCH`] calls and report the
/// median per-call latency and derived throughput.
fn bench(label: &str, mut f: impl FnMut()) {
    // One warm-up batch so table fills and allocator noise stay out of the
    // measured window.
    for _ in 0..BATCH {
        f();
    }
    let mut nanos_per_call: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..BATCH {
                f();
            }
            start.elapsed().as_nanos() as f64 / BATCH as f64
        })
        .collect();
    nanos_per_call.sort_by(|a, b| a.total_cmp(b));
    let median = nanos_per_call[SAMPLES / 2];
    let mops = 1_000.0 / median.max(1e-9);
    println!("{label:<32} {median:>9.1} ns/call  {mops:>8.2} Mops/s");
}

fn ctx(line: u64) -> AccessContext {
    AccessContext {
        line: PLine::new(line),
        pc: VAddr::new(0x400),
        cache_hit: false,
        page_size: PageSize::Size2M,
    }
}

fn prefetcher_on_access() {
    println!("-- prefetcher on_access --");
    for kind in PrefetcherKind::EVALUATED {
        for grain in [IndexGrain::Page4K, IndexGrain::Page2M] {
            let mut p = kind.build(grain);
            let mut out = Vec::with_capacity(64);
            let mut line = 0u64;
            bench(&format!("{kind}/{grain}"), || {
                out.clear();
                line = line.wrapping_add(3) & 0xf_ffff;
                p.on_access(black_box(&ctx(line)), &mut out);
                black_box(out.len());
            });
        }
    }
}

fn module_on_access() {
    println!("-- PSA module on_access (SPP) --");
    for policy in PageSizePolicy::ALL {
        let mut module = PsaModule::new(
            policy,
            PageSizeSource::Ppm,
            &|grain| PrefetcherKind::Spp.build(grain),
            1024,
            SdConfig::default(),
            ModuleConfig::default(),
        )
        .expect("module shape");
        let mut out = Vec::with_capacity(16);
        let mut line = 0u64;
        bench(&format!("SPP{}", policy.suffix()), || {
            out.clear();
            line = line.wrapping_add(1) & 0xf_ffff;
            module.on_access(
                black_box(PLine::new(line)),
                VAddr::new(0x400),
                false,
                true,
                PageSize::Size2M,
                (line as usize) & 1023,
                &|_| false,
                &mut out,
            );
            black_box(out.len());
        });
    }
}

fn main() {
    prefetcher_on_access();
    module_on_access();
}
