//! Figure 11: selection-logic ablation + ISO storage.

use psa_experiments::{fig11, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 11", &settings);
    println!("{}", fig11::run(&settings));
}
