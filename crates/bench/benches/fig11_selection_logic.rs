//! Figure 11: selection-logic ablation + ISO storage.

use psa_experiments::{fig11, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 11", &settings);
    let (text, doc) = fig11::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig11", &doc);
}
