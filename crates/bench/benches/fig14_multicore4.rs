//! Figure 14: 4-core weighted speedups over random mixes.

use psa_experiments::{fig1415, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 14 (4-core)", &settings);
    println!("mixes: {} (PSA_MIXES to scale; the paper uses 100)\n", settings.mixes());
    println!("{}", fig1415::run(&settings, 4));
}
