//! Figure 14: 4-core weighted speedups over random mixes.

use psa_experiments::{fig1415, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 14 (4-core)", &settings);
    println!(
        "mixes: {} (PSA_MIXES to scale; the paper uses 100)\n",
        settings.mixes()
    );
    let (text, doc) = fig1415::report(&settings, 4);
    println!("{text}");
    psa_bench::emit_json("fig14", &doc);
}
