//! Figure 8: per-workload speedups of the SPP PSA variants.

use psa_experiments::{fig08, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 8", &settings);
    let (text, doc) = fig08::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig08", &doc);
}
