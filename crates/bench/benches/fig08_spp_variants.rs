//! Figure 8: per-workload speedups of the SPP PSA variants.

use psa_experiments::{fig08, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 8", &settings);
    println!("{}", fig08::run(&settings));
}
