//! Figures 4 & 5: the motivation study (SPP vs magic page-size awareness).

use psa_experiments::{fig0405, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figures 4 & 5", &settings);
    let (text, doc) = fig0405::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig0405", &doc);
}
