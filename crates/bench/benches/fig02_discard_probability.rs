//! Figure 2: probability a prefetch is discarded for crossing 4KB inside a
//! 2MB page, for the original prefetchers.

use psa_experiments::{fig02, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 2", &settings);
    let (text, doc) = fig02::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig02", &doc);
}
