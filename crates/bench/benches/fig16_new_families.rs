//! Figure 16: Pangloss and DSPatch vs SPP across the PSA policy matrix.

use psa_experiments::{fig16, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 16", &settings);
    let (text, doc) = fig16::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig16", &doc);
}
