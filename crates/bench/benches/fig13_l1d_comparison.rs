//! Figure 13: comparison with state-of-the-art L1D prefetching.

use psa_experiments::{fig13, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 13", &settings);
    let (text, doc) = fig13::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig13", &doc);
}
