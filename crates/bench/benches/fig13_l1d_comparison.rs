//! Figure 13: comparison with state-of-the-art L1D prefetching.

use psa_experiments::{fig13, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 13", &settings);
    println!("{}", fig13::run(&settings));
}
