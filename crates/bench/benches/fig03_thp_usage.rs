//! Figure 3: memory mapped in 2MB pages across execution.

use psa_experiments::{fig03, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 3", &settings);
    let (text, doc) = fig03::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig03", &doc);
}
