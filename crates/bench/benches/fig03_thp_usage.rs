//! Figure 3: memory mapped in 2MB pages across execution.

use psa_experiments::{fig03, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 3", &settings);
    println!("{}", fig03::run(&settings));
}
