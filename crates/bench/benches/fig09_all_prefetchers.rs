//! Figure 9: per-suite geomeans for all four prefetchers.

use psa_experiments::{fig09, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 9", &settings);
    println!("{}", fig09::run(&settings));
}
