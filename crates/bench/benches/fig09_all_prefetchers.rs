//! Figure 9: per-suite geomeans for all four prefetchers.

use psa_experiments::{fig09, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 9", &settings);
    let (text, doc) = fig09::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig09", &doc);
}
