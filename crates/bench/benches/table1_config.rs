//! Table I: the simulated system configuration.

use psa_experiments::{runner, Settings};
use psa_sim::Json;

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Table I — system configuration", &settings);
    println!("{}", settings.config.table1());
    let doc = runner::doc(
        "table1",
        "system configuration",
        &settings,
        Json::Arr(vec![]),
    );
    psa_bench::emit_json("table1", &doc);
}
