//! Table I: the simulated system configuration.

use psa_experiments::Settings;

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Table I — system configuration", &settings);
    println!("{}", settings.config.table1());
}
