//! Trace replay: the SPP ladder over a streamed `.psatrace` recording
//! (the committed sample fixture, or `PSA_TRACE_FILE`).

use psa_experiments::{trace_replay, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Trace replay", &settings);
    let (text, doc) = trace_replay::report(&settings);
    println!("{text}");
    psa_bench::emit_json("trace_replay", &doc);
}
