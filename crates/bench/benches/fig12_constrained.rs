//! Figure 12: constrained evaluation (MSHR / LLC / DRAM sweeps).

use psa_experiments::{fig12, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 12", &settings);
    let (text, doc) = fig12::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig12", &doc);
}
