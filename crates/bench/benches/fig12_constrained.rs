//! Figure 12: constrained evaluation (MSHR / LLC / DRAM sweeps).

use psa_experiments::{fig12, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 12", &settings);
    println!("{}", fig12::run(&settings));
}
