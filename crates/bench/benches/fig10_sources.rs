//! Figure 10: sources of improvement (latency, coverage, accuracy).

use psa_experiments::{fig10, Settings};

fn main() {
    let settings = Settings::default();
    psa_bench::banner("Figure 10", &settings);
    let (text, doc) = fig10::report(&settings);
    println!("{text}");
    psa_bench::emit_json("fig10", &doc);
}
