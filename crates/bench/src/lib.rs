//! Support crate for the `cargo bench` experiment harnesses.
//!
//! Every figure/table of the paper has a bench target (see `benches/`);
//! each prints the regenerated rows as text and writes the same data as
//! a `BENCH_<figure>.json` document (schema in `docs/METRICS.md`) into
//! `PSA_BENCH_JSON_DIR` (default: the working directory). Scale with
//! `PSA_INSTRUCTIONS`, `PSA_WARMUP`, `PSA_WORKLOAD_LIMIT` and
//! `PSA_MIXES`; cap the parallel executor with `PSA_THREADS` — the
//! defaults run laptop-scale, the paper-faithful scale is 250M+250M
//! instructions over all 80 workloads and 100 mixes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use psa_experiments::runner;
use psa_experiments::Settings;
use psa_sim::Json;
use std::path::PathBuf;

/// Print the standard experiment banner: the Table I configuration and the
/// scaling knobs in force.
pub fn banner(title: &str, settings: &Settings) {
    println!("=== {title} ===");
    println!(
        "budget: {} warmup + {} measured instructions/core (PSA_WARMUP / PSA_INSTRUCTIONS to scale)",
        settings.config.warmup, settings.config.instructions
    );
    println!(
        "workloads: {} (PSA_WORKLOAD_LIMIT to subsample), threads: {} (PSA_THREADS to cap)\n",
        settings.workloads().len(),
        runner::threads()
    );
}

/// Where emitted JSON documents go: `PSA_BENCH_JSON_DIR`, default the
/// working directory (parsed by the experiments runner — the single
/// place the environment is read).
pub fn json_dir() -> PathBuf {
    runner::bench_json_dir()
}

/// Write `doc` as `BENCH_<figure>.json` into [`json_dir`] and print the
/// path and the process-wide executor summary.
///
/// # Panics
///
/// Panics if the file cannot be written — a bench run whose results are
/// silently lost is worse than a loud failure.
pub fn emit_json(figure: &str, doc: &Json) {
    let path = json_dir().join(format!("BENCH_{figure}.json"));
    psa_sim::report::write_json_file(&path, doc)
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    println!("\nwrote {}", path.display());
    if let Some(failures) = doc.get("failures").and_then(Json::as_arr) {
        if !failures.is_empty() {
            println!(
                "WARNING: {} failed job(s) recorded in {} — rows render with gaps; \
                 see its `failures` array",
                failures.len(),
                path.display()
            );
        }
    }
    println!("executor: {}", runner::global_stats().summary());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_prints() {
        banner("smoke", &Settings::default());
    }
}
