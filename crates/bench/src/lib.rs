//! Support crate for the `cargo bench` experiment harnesses.
//!
//! Every figure/table of the paper has a bench target (see `benches/`);
//! each prints the regenerated rows. Scale with `PSA_INSTRUCTIONS`,
//! `PSA_WARMUP`, `PSA_WORKLOAD_LIMIT` and `PSA_MIXES` — the defaults run
//! laptop-scale, the paper-faithful scale is 250M+250M instructions over
//! all 80 workloads and 100 mixes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use psa_experiments::Settings;

/// Print the standard experiment banner: the Table I configuration and the
/// scaling knobs in force.
pub fn banner(title: &str, settings: &Settings) {
    println!("=== {title} ===");
    println!(
        "budget: {} warmup + {} measured instructions/core (PSA_WARMUP / PSA_INSTRUCTIONS to scale)",
        settings.config.warmup, settings.config.instructions
    );
    println!("workloads: {} (PSA_WORKLOAD_LIMIT to subsample)\n", settings.workloads().len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_prints() {
        banner("smoke", &Settings::default());
    }
}
