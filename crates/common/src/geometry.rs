//! Power-of-two geometry helpers for cache and TLB shapes.

/// Error returned when a structure shape is not realisable in hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeometryError {
    what: &'static str,
    value: u64,
}

impl GeometryError {
    pub(crate) fn new(what: &'static str, value: u64) -> Self {
        Self { what, value }
    }
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} must be a non-zero power of two, got {}",
            self.what, self.value
        )
    }
}

impl std::error::Error for GeometryError {}

/// log2 of a power of two.
///
/// # Errors
///
/// Returns [`GeometryError`] if `value` is zero or not a power of two.
///
/// ```
/// # use psa_common::geometry::checked_log2;
/// assert_eq!(checked_log2("sets", 64).unwrap(), 6);
/// assert!(checked_log2("sets", 48).is_err());
/// ```
pub fn checked_log2(what: &'static str, value: u64) -> Result<u32, GeometryError> {
    if value == 0 || !value.is_power_of_two() {
        return Err(GeometryError::new(what, value));
    }
    Ok(value.trailing_zeros())
}

/// Extract `bits` bits of `value` starting at bit `shift`.
#[inline]
pub const fn bit_field(value: u64, shift: u32, bits: u32) -> u64 {
    if bits == 0 {
        return 0;
    }
    (value >> shift) & ((1u64 << bits) - 1)
}

/// Fold a 64-bit value down to `bits` bits by XOR-ing `bits`-wide chunks.
///
/// Used to build well-distributed table indices out of page numbers and
/// signatures without a multiplicative hash (matching the cheap hardware
/// index functions prefetcher papers assume).
#[inline]
pub const fn xor_fold(mut value: u64, bits: u32) -> u64 {
    debug_assert!(bits > 0 && bits < 64);
    let mask = (1u64 << bits) - 1;
    let mut out = 0u64;
    while value != 0 {
        out ^= value & mask;
        value >>= bits;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_of_powers() {
        for shift in 0..63 {
            assert_eq!(checked_log2("x", 1 << shift).unwrap(), shift);
        }
    }

    #[test]
    fn log2_rejects_non_powers() {
        for v in [0u64, 3, 6, 100, u64::MAX] {
            let err = checked_log2("ways", v).unwrap_err();
            assert!(err.to_string().contains("ways"));
        }
    }

    #[test]
    fn bit_field_extracts() {
        assert_eq!(bit_field(0b1011_0100, 2, 4), 0b1101);
        assert_eq!(bit_field(u64::MAX, 60, 4), 0xf);
        assert_eq!(bit_field(123, 0, 0), 0);
    }

    #[test]
    fn xor_fold_stays_in_range() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert!(xor_fold(v, 9) < 512);
        }
    }

    #[test]
    fn xor_fold_distributes_consecutive_pages() {
        // Consecutive page numbers must not collapse onto one index.
        let idx: Vec<u64> = (0..16).map(|p| xor_fold(p, 4)).collect();
        let unique: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(unique.len(), 16);
    }
}
