//! A fast, deterministic hasher for simulator-internal hash containers.
//!
//! The standard library's default hasher (SipHash with a per-process
//! random seed) is built to resist hash-flooding from untrusted input.
//! The simulator's hash containers key on values it generates itself —
//! page numbers, region ids — so that defence buys nothing, while the
//! per-lookup cost sits directly on the address-translation hot path
//! (one region lookup and one touched-page insert per simulated access).
//!
//! [`FxHasher`] is the word-at-a-time multiply-rotate scheme used by the
//! Rust compiler's `FxHashMap`: fold each 8-byte chunk into the state
//! with a rotate, xor and a multiply by a 64-bit constant derived from
//! the golden ratio. It is seedless, so hashes are identical across
//! processes — nothing observable depends on that (the codec writes hash
//! containers sorted by key precisely so iteration order never leaks),
//! but it keeps behaviour easy to reason about.
//!
//! # Example
//!
//! ```
//! use psa_common::fxhash::FxHashMap;
//!
//! let mut seen: FxHashMap<u64, u32> = FxHashMap::default();
//! seen.insert(0x2000, 1);
//! assert_eq!(seen.get(&0x2000), Some(&1));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// 2^64 / φ, the multiplicative constant (same as rustc's FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The word-at-a-time multiply-rotate hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(bytes[..8].try_into().expect("len 8")));
            bytes = &bytes[8..];
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let hash = |v: u64| {
            let mut h = FxHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn byte_stream_chunks_match_alignment() {
        // Hashing the same logical bytes in one call is a fixed function
        // of the input, whatever the split.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
            s.insert(i);
        }
        assert_eq!(m.len(), 1000);
        assert!(s.contains(&999));
        assert_eq!(m[&500], 1000);
    }
}
