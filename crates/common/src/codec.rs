//! A tiny, dependency-free binary codec for checkpoint serialization.
//!
//! The checkpoint/restore machinery (see `psa-sim`'s snapshot module)
//! persists the *mutable* state of every simulated component: cache
//! arrays, MSHR files, prefetcher tables, RNG streams, trace cursors.
//! Configurations and derived geometry are deliberately **not** encoded —
//! a restore target is always rebuilt from the same `SimConfig` first and
//! only then loaded, which keeps `&'static str` names and computed shapes
//! out of the byte stream.
//!
//! Design rules that make the format deterministic and corruption-safe:
//!
//! * fixed-width little-endian integers, `f64` as IEEE-754 bits;
//! * every variable-length container is length-prefixed;
//! * hash containers ([`std::collections::HashMap`] / `HashSet`) are
//!   written **sorted by key**, so identical logical state always encodes
//!   to identical bytes regardless of hasher seeds;
//! * reads never panic: running off the end of the buffer or meeting an
//!   invalid tag yields a typed [`CodecError`].

use std::collections::{HashMap, HashSet, VecDeque};

/// A decoding failure. The checkpoint layer maps these to its typed
/// rejection errors; nothing in the codec ever panics on hostile bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value was complete (truncation).
    Eof,
    /// A tag or length field held a value that cannot be decoded.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Eof => f.write_str("unexpected end of checkpoint data"),
            CodecError::Corrupt(what) => write!(f, "corrupt checkpoint field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Byte-stream encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit everywhere).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes (length is the caller's business).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Byte-stream decoder over a borrowed buffer.
#[derive(Debug)]
pub struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `data`, starting at the beginning.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Eof);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Read a `usize` (stored as `u64`); rejects values that do not fit.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?).map_err(|_| CodecError::Corrupt("usize overflow"))
    }

    /// Read a length prefix that will gate an allocation: bounded by the
    /// bytes actually remaining, so a corrupted length cannot trigger a
    /// huge allocation before the inevitable [`CodecError::Eof`].
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            // Every element needs at least one byte, so a length larger
            // than the remaining buffer is corruption by construction.
            return Err(CodecError::Eof);
        }
        Ok(n)
    }
}

/// State that can be written to an [`Enc`] and loaded back **in place**
/// from a [`Dec`].
///
/// `load` mutates an existing value rather than constructing one, because
/// checkpoint targets are always rebuilt from configuration first; only
/// the mutable state travels through the codec.
pub trait Persist {
    /// Append this value's state to `e`.
    fn save(&self, e: &mut Enc);
    /// Overwrite this value's state from `d`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or invalid input; the value may
    /// be partially overwritten and must be discarded by the caller.
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError>;
}

macro_rules! persist_int {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Persist for $ty {
            fn save(&self, e: &mut Enc) {
                e.$put(*self);
            }
            fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
                *self = d.$get()?;
                Ok(())
            }
        }
    };
}

persist_int!(u8, put_u8, get_u8);
persist_int!(u16, put_u16, get_u16);
persist_int!(u32, put_u32, get_u32);
persist_int!(u64, put_u64, get_u64);
persist_int!(usize, put_usize, get_usize);

impl Persist for bool {
    fn save(&self, e: &mut Enc) {
        e.put_u8(u8::from(*self));
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        *self = match d.get_u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::Corrupt("bool tag")),
        };
        Ok(())
    }
}

impl Persist for i64 {
    fn save(&self, e: &mut Enc) {
        e.put_u64(*self as u64);
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        *self = d.get_u64()? as i64;
        Ok(())
    }
}

impl Persist for i32 {
    fn save(&self, e: &mut Enc) {
        e.put_u32(*self as u32);
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        *self = d.get_u32()? as i32;
        Ok(())
    }
}

impl Persist for f64 {
    fn save(&self, e: &mut Enc) {
        e.put_u64(self.to_bits());
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        *self = f64::from_bits(d.get_u64()?);
        Ok(())
    }
}

impl<T: Persist + Default> Persist for Option<T> {
    fn save(&self, e: &mut Enc) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.save(e);
            }
        }
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        match d.get_u8()? {
            0 => *self = None,
            1 => {
                let slot = self.get_or_insert_with(T::default);
                slot.load(d)?;
            }
            _ => return Err(CodecError::Corrupt("option tag")),
        }
        Ok(())
    }
}

impl<T: Persist + Default> Persist for Vec<T> {
    fn save(&self, e: &mut Enc) {
        e.put_usize(self.len());
        for v in self {
            v.save(e);
        }
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        let n = d.get_len()?;
        self.clear();
        for _ in 0..n {
            let mut v = T::default();
            v.load(d)?;
            self.push(v);
        }
        Ok(())
    }
}

impl<T: Persist + Default> Persist for VecDeque<T> {
    fn save(&self, e: &mut Enc) {
        e.put_usize(self.len());
        for v in self {
            v.save(e);
        }
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        let n = d.get_len()?;
        self.clear();
        for _ in 0..n {
            let mut v = T::default();
            v.load(d)?;
            self.push_back(v);
        }
        Ok(())
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn save(&self, e: &mut Enc) {
        for v in self {
            v.save(e);
        }
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        for v in self.iter_mut() {
            v.load(d)?;
        }
        Ok(())
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, e: &mut Enc) {
        self.0.save(e);
        self.1.save(e);
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        self.0.load(d)?;
        self.1.load(d)
    }
}

// Hash containers are written sorted by key so that identical logical
// state always yields identical bytes (hasher seeds vary per process).
// Generic over the hasher so containers using `crate::fxhash` encode the
// same way as default-hashed ones.
impl<K, V, S> Persist for HashMap<K, V, S>
where
    K: Persist + Default + Ord + Clone + std::hash::Hash + Eq,
    V: Persist + Default,
    S: std::hash::BuildHasher,
{
    fn save(&self, e: &mut Enc) {
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        e.put_usize(keys.len());
        for k in keys {
            k.save(e);
            self[k].save(e);
        }
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        let n = d.get_len()?;
        self.clear();
        for _ in 0..n {
            let mut k = K::default();
            k.load(d)?;
            let mut v = V::default();
            v.load(d)?;
            self.insert(k, v);
        }
        Ok(())
    }
}

impl<K, S> Persist for HashSet<K, S>
where
    K: Persist + Default + Ord + Clone + std::hash::Hash + Eq,
    S: std::hash::BuildHasher,
{
    fn save(&self, e: &mut Enc) {
        let mut keys: Vec<&K> = self.iter().collect();
        keys.sort();
        e.put_usize(keys.len());
        for k in keys {
            k.save(e);
        }
    }
    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        let n = d.get_len()?;
        self.clear();
        for _ in 0..n {
            let mut k = K::default();
            k.load(d)?;
            self.insert(k);
        }
        Ok(())
    }
}

/// Implement [`Persist`] for a struct as the concatenation of the listed
/// fields (in order). Fields not listed — configuration, derived geometry
/// — are left untouched by `load`, which is exactly the rebuild-then-load
/// restore contract.
#[macro_export]
macro_rules! persist_struct {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::codec::Persist for $ty {
            fn save(&self, e: &mut $crate::codec::Enc) {
                $($crate::codec::Persist::save(&self.$field, e);)*
            }
            fn load(
                &mut self,
                d: &mut $crate::codec::Dec,
            ) -> Result<(), $crate::codec::CodecError> {
                $($crate::codec::Persist::load(&mut self.$field, d)?;)*
                Ok(())
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut e = Enc::new();
        0xabu8.save(&mut e);
        0x1234u16.save(&mut e);
        0xdead_beefu32.save(&mut e);
        u64::MAX.save(&mut e);
        (-7i64).save(&mut e);
        true.save(&mut e);
        2.5f64.save(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let (mut a, mut b, mut c, mut x, mut i, mut t, mut f) =
            (0u8, 0u16, 0u32, 0u64, 0i64, false, 0.0f64);
        a.load(&mut d).unwrap();
        b.load(&mut d).unwrap();
        c.load(&mut d).unwrap();
        x.load(&mut d).unwrap();
        i.load(&mut d).unwrap();
        t.load(&mut d).unwrap();
        f.load(&mut d).unwrap();
        assert_eq!(
            (a, b, c, x, i, t, f),
            (0xab, 0x1234, 0xdead_beef, u64::MAX, -7, true, 2.5)
        );
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn containers_round_trip() {
        let mut e = Enc::new();
        vec![1u64, 2, 3].save(&mut e);
        VecDeque::from([9u32, 8]).save(&mut e);
        Some(5u8).save(&mut e);
        Option::<u8>::None.save(&mut e);
        [7u64, 11].save(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let mut v: Vec<u64> = vec![99; 10];
        v.load(&mut d).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let mut q: VecDeque<u32> = VecDeque::new();
        q.load(&mut d).unwrap();
        assert_eq!(q, VecDeque::from([9, 8]));
        let mut o: Option<u8> = None;
        o.load(&mut d).unwrap();
        assert_eq!(o, Some(5));
        o.load(&mut d).unwrap();
        assert_eq!(o, None);
        let mut arr = [0u64; 2];
        arr.load(&mut d).unwrap();
        assert_eq!(arr, [7, 11]);
    }

    #[test]
    fn hash_containers_encode_sorted_and_round_trip() {
        let mut m: HashMap<u64, u32> = HashMap::new();
        m.insert(3, 30);
        m.insert(1, 10);
        m.insert(2, 20);
        let mut s: HashSet<u64> = HashSet::new();
        s.insert(42);
        s.insert(7);

        // Same logical content encodes to identical bytes every time.
        let encode = |m: &HashMap<u64, u32>, s: &HashSet<u64>| {
            let mut e = Enc::new();
            m.save(&mut e);
            s.save(&mut e);
            e.into_bytes()
        };
        let bytes = encode(&m, &s);
        assert_eq!(bytes, encode(&m.clone(), &s.clone()));

        let mut d = Dec::new(&bytes);
        let mut m2: HashMap<u64, u32> = HashMap::new();
        let mut s2: HashSet<u64> = HashSet::new();
        m2.load(&mut d).unwrap();
        s2.load(&mut d).unwrap();
        assert_eq!(m2, m);
        assert_eq!(s2, s);
    }

    #[test]
    fn truncation_is_eof_not_a_panic() {
        let mut e = Enc::new();
        vec![1u64, 2, 3].save(&mut e);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            let mut v: Vec<u64> = Vec::new();
            assert!(v.load(&mut d).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hostile_length_is_rejected_before_allocating() {
        let mut e = Enc::new();
        e.put_u64(u64::MAX); // absurd element count
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let mut v: Vec<u64> = Vec::new();
        assert_eq!(v.load(&mut d), Err(CodecError::Eof));
    }

    #[test]
    fn bad_tags_are_corrupt() {
        let bytes = [2u8];
        let mut b = false;
        assert!(matches!(
            b.load(&mut Dec::new(&bytes)),
            Err(CodecError::Corrupt(_))
        ));
        let mut o: Option<u8> = None;
        assert!(matches!(
            o.load(&mut Dec::new(&bytes)),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn persist_struct_macro_round_trips() {
        #[derive(Default, PartialEq, Debug)]
        struct Demo {
            a: u64,
            b: Vec<u32>,
            skipped: u64,
        }
        persist_struct!(Demo { a, b });
        let src = Demo {
            a: 5,
            b: vec![1, 2],
            skipped: 77,
        };
        let mut e = Enc::new();
        src.save(&mut e);
        let bytes = e.into_bytes();
        let mut dst = Demo {
            skipped: 42,
            ..Demo::default()
        };
        dst.load(&mut Dec::new(&bytes)).unwrap();
        assert_eq!(dst.a, 5);
        assert_eq!(dst.b, vec![1, 2]);
        assert_eq!(dst.skipped, 42, "unlisted fields stay untouched");
    }
}
