//! N-bit saturating counters.
//!
//! The paper uses these in two load-bearing places: the 3-bit `Csel`
//! selection counter of Pref-PSA-SD (§IV-B2) and the confidence counters in
//! SPP's pattern table. The type is deliberately tiny and branch-light since
//! it sits on simulation hot paths.

/// An unsigned saturating counter with a configurable bit width.
///
/// ```
/// use psa_common::SatCounter;
///
/// let mut csel = SatCounter::centered(3);
/// assert!(!csel.msb()); // starts just below the midpoint → selects Pref-PSA
/// csel.inc();
/// assert!(csel.msb()); // one useful PSA-2MB prefetch flips the choice
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u32,
    max: u32,
    bits: u32,
}

// The width is configuration, but it is persisted alongside the value so
// that counters can be restored into `Default`-built container elements
// (e.g. a `Vec<(i64, SatCounter)>` inside a prefetcher table) without the
// load target having to know the width up front.
crate::persist_struct!(SatCounter { value, max, bits });

/// A placeholder 1-bit counter intended only as a codec load target; every
/// real constructor is [`SatCounter::new`] or [`SatCounter::centered`].
impl Default for SatCounter {
    fn default() -> Self {
        Self::new(1)
    }
}

impl SatCounter {
    /// A `bits`-wide counter starting at zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31.
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0 && bits < 32, "counter width out of range: {bits}");
        Self {
            value: 0,
            max: (1u32 << bits) - 1,
            bits,
        }
    }

    /// A `bits`-wide counter starting just below the midpoint, so the MSB is
    /// clear until the first net increment — the neutral initial state Set
    /// Dueling assumes.
    pub fn centered(bits: u32) -> Self {
        let mut c = Self::new(bits);
        c.value = (c.max / 2).max(if c.bits > 1 { c.max / 2 } else { 0 });
        c
    }

    /// Current value.
    #[inline]
    pub fn value(self) -> u32 {
        self.value
    }

    /// Saturating maximum (`2^bits - 1`).
    #[inline]
    pub fn max(self) -> u32 {
        self.max
    }

    /// Bit width.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Whether the most-significant bit is set — the Set Dueling decision.
    #[inline]
    pub fn msb(self) -> bool {
        self.value > self.max / 2
    }

    /// Saturating increment.
    #[inline]
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Confidence as a fraction of the maximum, in `[0, 1]`.
    #[inline]
    pub fn fraction(self) -> f64 {
        f64::from(self.value) / f64::from(self.max)
    }

    /// Reset to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SatCounter::new(2);
        c.dec();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.inc();
        }
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn msb_threshold_for_3_bits() {
        // 3-bit counter: values 0..=3 → MSB clear, 4..=7 → MSB set.
        let mut c = SatCounter::new(3);
        for expected_msb in [false, false, false, false, true, true, true, true] {
            assert_eq!(c.msb(), expected_msb, "value {}", c.value());
            c.inc();
        }
    }

    #[test]
    fn centered_counter_flips_on_first_inc() {
        let mut c = SatCounter::centered(3);
        assert_eq!(c.value(), 3);
        assert!(!c.msb());
        c.inc();
        assert!(c.msb());
        c.dec();
        assert!(!c.msb());
    }

    #[test]
    fn fraction_spans_unit_interval() {
        let mut c = SatCounter::new(4);
        assert_eq!(c.fraction(), 0.0);
        for _ in 0..15 {
            c.inc();
        }
        assert_eq!(c.fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_rejected() {
        let _ = SatCounter::new(0);
    }
}
