//! Shared foundation types for the *Page Size Aware Cache Prefetching*
//! reproduction.
//!
//! This crate defines the vocabulary every other crate in the workspace
//! speaks:
//!
//! * [`addr`] — virtual/physical address and cache-line newtypes plus the
//!   [`PageSize`] enum that the whole paper revolves around.
//! * [`geometry`] — power-of-two helpers used to validate cache shapes.
//! * [`satcounter`] — n-bit saturating counters (`Csel`, SPP confidence, …).
//! * [`stats`] — geometric means, weighted speedups and distribution
//!   summaries used when reproducing the paper's figures.
//! * [`rng`] — a deterministic, seedable random source so every simulation
//!   is reproducible bit-for-bit.
//! * [`codec`] — a dependency-free binary codec ([`codec::Persist`]) used
//!   by the checkpoint/restore machinery to serialize mutable simulator
//!   state deterministically.
//! * [`obs`] — zero-cost-when-disabled observability primitives
//!   (counters, latency histograms, a sampling event ring exportable as
//!   a Chrome trace) threaded through every simulated component.
//! * [`table`] — minimal fixed-width text tables for experiment output.
//!
//! # Example
//!
//! ```
//! use psa_common::{PAddr, PageSize};
//!
//! let addr = PAddr::new(0x20_0040);
//! let line = addr.line();
//! assert_eq!(line.page_number(PageSize::Size4K), 0x200);
//! assert_eq!(addr.page_size_lines(PageSize::Size2M), 32_768);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod codec;
pub mod fxhash;
pub mod geometry;
pub mod obs;
pub mod rng;
pub mod satcounter;
pub mod stats;
pub mod table;

pub use addr::{PAddr, PLine, PageSize, VAddr, VLine, LINE_BYTES, LINE_SHIFT};
pub use codec::{CodecError, Dec, Enc, Persist};
pub use obs::{ObsConfig, ObsReport};
pub use rng::DetRng;
pub use satcounter::SatCounter;
pub use stats::{geomean, DistSummary};
pub use table::Table;
