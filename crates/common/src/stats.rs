//! Statistics used to reduce simulation results into the paper's numbers.
//!
//! The paper reports *geometric mean* speedups for single-core results
//! (§VI-B), *weighted speedups* for multi-core mixes (§V-B), and
//! distributions (violin plots / box ranges) for Figures 2, 14 and 15.

/// Geometric mean of strictly positive samples.
///
/// Returns 1.0 for an empty slice so that "no workloads" folds neutrally
/// into speedup arithmetic.
///
/// # Panics
///
/// Panics if any sample is not finite and positive — a speedup of zero or a
/// NaN is always an upstream bug worth failing loudly on.
///
/// ```
/// # use psa_common::geomean;
/// assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = samples
        .iter()
        .map(|&s| {
            assert!(
                s.is_finite() && s > 0.0,
                "geomean sample must be positive, got {s}"
            );
            s.ln()
        })
        .sum();
    (log_sum / samples.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Convert a speedup ratio (e.g. 1.055) to the percent form the paper
/// prints (5.5).
#[inline]
pub fn speedup_pct(ratio: f64) -> f64 {
    (ratio - 1.0) * 100.0
}

/// Weighted speedup of a multi-core mix over a baseline, following §V-B:
/// `sum(IPC_multicore / IPC_isolation)` for the evaluated system divided by
/// the same sum for the baseline system.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or any isolation IPC is
/// non-positive.
pub fn weighted_speedup(
    eval_multicore_ipc: &[f64],
    baseline_multicore_ipc: &[f64],
    isolation_ipc: &[f64],
) -> f64 {
    assert_eq!(eval_multicore_ipc.len(), isolation_ipc.len());
    assert_eq!(baseline_multicore_ipc.len(), isolation_ipc.len());
    assert!(!isolation_ipc.is_empty(), "empty mix");
    let fold = |multi: &[f64]| -> f64 {
        multi
            .iter()
            .zip(isolation_ipc)
            .map(|(&m, &i)| {
                assert!(i > 0.0, "isolation IPC must be positive");
                m / i
            })
            .sum()
    };
    fold(eval_multicore_ipc) / fold(baseline_multicore_ipc)
}

/// Five-number summary plus mean, used to reproduce the paper's violin and
/// box distributions (Figures 2, 14, 15) in text form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistSummary {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl DistSummary {
    /// Summarise `samples`. Returns the default (all zeros) for an empty
    /// slice.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in distribution"));
        Self {
            min: sorted[0],
            p25: percentile_sorted(&sorted, 0.25),
            median: percentile_sorted(&sorted, 0.50),
            p75: percentile_sorted(&sorted, 0.75),
            max: *sorted.last().expect("nonempty"),
            mean: mean(samples),
            count: samples.len(),
        }
    }
}

impl std::fmt::Display for DistSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:+.2} | p25 {:+.2} | med {:+.2} | p75 {:+.2} | max {:+.2} | mean {:+.2} (n={})",
            self.min, self.p25, self.median, self.p75, self.max, self.mean, self.count
        )
    }
}

/// Linear-interpolated percentile of an already-sorted slice, `q` in [0,1].
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 8.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn speedup_pct_matches_paper_convention() {
        assert!((speedup_pct(1.081) - 8.1).abs() < 1e-9);
        assert!((speedup_pct(0.9) + 10.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_speedup_neutral_when_equal() {
        let ipc = [1.0, 2.0, 0.5, 1.5];
        let iso = [2.0, 2.5, 1.0, 2.0];
        assert!((weighted_speedup(&ipc, &ipc, &iso) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_improvement() {
        // Evaluated system doubles every core's IPC → weighted speedup 2.
        let base = [1.0, 1.0];
        let eval = [2.0, 2.0];
        let iso = [4.0, 4.0];
        assert!((weighted_speedup(&eval, &base, &iso) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_normalizes_high_ipc_apps() {
        // A high-IPC app improving by 10% counts the same as a low-IPC app
        // improving by 10% — the normalisation the paper cites [16], [96].
        let base = [4.0, 0.4];
        let eval_fast_app = [4.4, 0.4];
        let eval_slow_app = [4.0, 0.44];
        let iso = [4.0, 0.4];
        let a = weighted_speedup(&eval_fast_app, &base, &iso);
        let b = weighted_speedup(&eval_slow_app, &base, &iso);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn summary_quartiles() {
        let s = DistSummary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
    }

    #[test]
    fn summary_interpolates() {
        let s = DistSummary::of(&[0.0, 1.0]);
        assert!((s.median - 0.5).abs() < 1e-12);
        assert!((s.p25 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_default() {
        assert_eq!(DistSummary::of(&[]), DistSummary::default());
    }

    #[test]
    fn summary_display_nonempty() {
        let s = DistSummary::of(&[1.0]);
        assert!(s.to_string().contains("n=1"));
    }
}
