//! Minimal fixed-width text tables for experiment output.
//!
//! The benchmark harnesses print each paper figure/table as plain text; this
//! keeps the output diff-able and dependency-free.

use std::fmt::Write as _;

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to their widest cell. The first column is left-aligned, the rest
/// right-aligned (numbers).
///
/// ```
/// use psa_common::Table;
/// let mut t = Table::new(vec!["workload".into(), "speedup %".into()]);
/// t.row(vec!["milc".into(), "12.3".into()]);
/// let text = t.render();
/// assert!(text.contains("milc"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with a separator line under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Format a percentage with sign and one decimal, matching the paper's
/// "+8.1" style.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}")
}

/// Format a ratio with three decimals.
pub fn ratio(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "10.25".into()]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].chars().count().max(lines[0].len()));
        assert!(lines[3].starts_with("longer"));
        assert!(lines[2].ends_with("1.0"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(8.06), "+8.1");
        assert_eq!(pct(-1.34), "-1.3");
        assert_eq!(ratio(1.0), "1.000");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(vec!["x".into()]);
        assert!(t.is_empty());
        t.row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
