//! Address and cache-line newtypes.
//!
//! The simulator distinguishes *virtual* addresses (what the traced program
//! sees) from *physical* addresses (what the caches below L1 and the DRAM
//! see). Confusing the two spaces is the classic source of prefetcher bugs —
//! and the entire premise of the paper is that L2C/LLC prefetchers only see
//! physical addresses — so the two spaces get distinct types that cannot be
//! mixed accidentally.

use std::fmt;

/// Cache line (block) size in bytes, matching the paper's 64-byte blocks.
pub const LINE_BYTES: u64 = 64;
/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// The page sizes the simulated system supports concurrently.
///
/// The paper's evaluation targets x86 with Linux THP enabled, which
/// transparently provides 4KB and 2MB pages (1GB pages require manual
/// `hugetlbfs` mapping and are out of scope, exactly as in the paper).
///
/// In PPM this enum is what the single MSHR page-size bit encodes:
/// `0 → Size4K`, `1 → Size2M`.
///
/// ```
/// use psa_common::PageSize;
/// assert_eq!(PageSize::Size4K.lines(), 64);
/// assert_eq!(PageSize::Size2M.lines(), 32_768);
/// assert_eq!(PageSize::from_bit(true), PageSize::Size2M);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PageSize {
    /// Standard 4KB page.
    #[default]
    Size4K,
    /// 2MB large page (Linux THP).
    Size2M,
}

impl PageSize {
    /// Page size in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4096,
            PageSize::Size2M => 2 * 1024 * 1024,
        }
    }

    /// log2 of the page size in bytes (12 or 21).
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
        }
    }

    /// Number of 64-byte cache lines the page holds (64 or 32768).
    #[inline]
    pub const fn lines(self) -> u64 {
        self.bytes() / LINE_BYTES
    }

    /// log2 of [`PageSize::lines`] (6 or 15).
    #[inline]
    pub const fn line_shift(self) -> u32 {
        self.shift() - LINE_SHIFT
    }

    /// Maximum in-page line delta magnitude a prefetcher may speculate with:
    /// 64 for 4KB pages and 32768 for 2MB pages (paper §III-C, footnote 4).
    #[inline]
    pub const fn max_delta(self) -> i64 {
        self.lines() as i64
    }

    /// Decode the MSHR page-size bit (`false` → 4KB, `true` → 2MB).
    #[inline]
    pub const fn from_bit(bit: bool) -> Self {
        if bit {
            PageSize::Size2M
        } else {
            PageSize::Size4K
        }
    }

    /// Encode as the MSHR page-size bit.
    #[inline]
    pub const fn bit(self) -> bool {
        matches!(self, PageSize::Size2M)
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => f.write_str("4KB"),
            PageSize::Size2M => f.write_str("2MB"),
        }
    }
}

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident, $line:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wrap a raw byte address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw byte address.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The cache line containing this address.
            #[inline]
            pub const fn line(self) -> $line {
                $line(self.0 >> LINE_SHIFT)
            }

            /// Page number of the page of `size` containing this address.
            #[inline]
            pub const fn page_number(self, size: PageSize) -> u64 {
                self.0 >> size.shift()
            }

            /// Byte offset within the page of `size` containing this address.
            #[inline]
            pub const fn page_offset(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Address rounded down to the start of its page of `size`.
            #[inline]
            pub const fn page_base(self, size: PageSize) -> Self {
                Self(self.0 & !(size.bytes() - 1))
            }

            /// Line count of a page of `size`; convenience re-export used in
            /// doc examples.
            #[inline]
            pub const fn page_size_lines(self, size: PageSize) -> u64 {
                let _ = self;
                size.lines()
            }

            /// Add a signed byte offset, saturating at zero.
            #[inline]
            pub fn offset(self, delta: i64) -> Self {
                Self(self.0.saturating_add_signed(delta))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self::new(raw)
            }
        }

        $(#[$doc])*
        ///
        /// This is the *line-number* companion type: the byte address shifted
        /// right by [`LINE_SHIFT`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $line(u64);

        impl $line {
            /// Wrap a raw line number (byte address >> 6).
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw line number.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// First byte address of the line.
            #[inline]
            pub const fn addr(self) -> $name {
                $name(self.0 << LINE_SHIFT)
            }

            /// Page number of the page of `size` containing this line.
            #[inline]
            pub const fn page_number(self, size: PageSize) -> u64 {
                self.0 >> size.line_shift()
            }

            /// Line index within its page of `size`
            /// (0..64 for 4KB, 0..32768 for 2MB).
            #[inline]
            pub const fn page_offset(self, size: PageSize) -> u64 {
                self.0 & (size.lines() - 1)
            }

            /// Apply a signed line delta; `None` on numeric underflow.
            #[inline]
            pub fn checked_add(self, delta: i64) -> Option<Self> {
                self.0.checked_add_signed(delta).map(Self)
            }

            /// Signed line distance `self - other`.
            #[inline]
            pub const fn delta_from(self, other: Self) -> i64 {
                self.0 as i64 - other.0 as i64
            }

            /// Whether `self` and `other` lie in the same page of `size`.
            #[inline]
            pub const fn same_page(self, other: Self, size: PageSize) -> bool {
                self.page_number(size) == other.page_number(size)
            }
        }

        impl fmt::Display for $line {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "line {:#x}", self.0)
            }
        }

        impl From<u64> for $line {
            fn from(raw: u64) -> Self {
                Self::new(raw)
            }
        }
    };
}

addr_type!(
    /// A **virtual** byte address, as seen by the traced program, the L1
    /// caches and the TLB hierarchy.
    VAddr,
    VLine
);

macro_rules! persist_addr {
    ($($ty:ident),*) => {
        $(impl crate::codec::Persist for $ty {
            fn save(&self, e: &mut crate::codec::Enc) {
                e.put_u64(self.0);
            }
            fn load(
                &mut self,
                d: &mut crate::codec::Dec,
            ) -> Result<(), crate::codec::CodecError> {
                self.0 = d.get_u64()?;
                Ok(())
            }
        })*
    };
}

persist_addr!(VAddr, VLine, PAddr, PLine);

impl crate::codec::Persist for PageSize {
    fn save(&self, e: &mut crate::codec::Enc) {
        e.put_u8(u8::from(self.bit()));
    }
    fn load(&mut self, d: &mut crate::codec::Dec) -> Result<(), crate::codec::CodecError> {
        *self = match d.get_u8()? {
            0 => PageSize::Size4K,
            1 => PageSize::Size2M,
            _ => return Err(crate::codec::CodecError::Corrupt("page size tag")),
        };
        Ok(())
    }
}

addr_type!(
    /// A **physical** byte address, as seen by the L2C, LLC, DRAM and — the
    /// paper's focus — the lower-level cache prefetchers.
    PAddr,
    PLine
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_constants_match_paper() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Size4K.lines(), 64);
        assert_eq!(PageSize::Size2M.lines(), 32768);
        // Paper footnote 4: deltas range ±64 in 4KB pages, ±32768 in 2MB.
        assert_eq!(PageSize::Size4K.max_delta(), 64);
        assert_eq!(PageSize::Size2M.max_delta(), 32768);
    }

    #[test]
    fn page_size_bit_roundtrip() {
        for size in [PageSize::Size4K, PageSize::Size2M] {
            assert_eq!(PageSize::from_bit(size.bit()), size);
        }
        assert!(!PageSize::Size4K.bit());
        assert!(PageSize::Size2M.bit());
    }

    #[test]
    fn line_extraction() {
        let a = PAddr::new(0x1234_5678);
        assert_eq!(a.line().raw(), 0x1234_5678 >> 6);
        assert_eq!(a.line().addr().raw(), 0x1234_5678 & !0x3f);
    }

    #[test]
    fn page_number_and_offset() {
        let a = VAddr::new(0x0020_1040);
        assert_eq!(a.page_number(PageSize::Size4K), 0x201);
        assert_eq!(a.page_offset(PageSize::Size4K), 0x40);
        assert_eq!(a.page_number(PageSize::Size2M), 0x1);
        assert_eq!(a.page_base(PageSize::Size2M).raw(), 0x0020_0000);
    }

    #[test]
    fn line_page_geometry() {
        // Line 64 is the first line of the second 4KB page.
        let l = PLine::new(64);
        assert_eq!(l.page_number(PageSize::Size4K), 1);
        assert_eq!(l.page_offset(PageSize::Size4K), 0);
        assert_eq!(l.page_number(PageSize::Size2M), 0);
        assert_eq!(l.page_offset(PageSize::Size2M), 64);
    }

    #[test]
    fn line_delta_arithmetic() {
        let a = PLine::new(100);
        let b = a.checked_add(-36).unwrap();
        assert_eq!(b.raw(), 64);
        assert_eq!(b.delta_from(a), -36);
        assert_eq!(PLine::new(1).checked_add(-2), None);
    }

    #[test]
    fn same_page_respects_size() {
        let a = PLine::new(63);
        let b = PLine::new(64);
        assert!(!a.same_page(b, PageSize::Size4K));
        assert!(a.same_page(b, PageSize::Size2M));
    }

    #[test]
    fn display_formats() {
        assert_eq!(PageSize::Size4K.to_string(), "4KB");
        assert_eq!(PageSize::Size2M.to_string(), "2MB");
        assert_eq!(PAddr::new(0xff).to_string(), "0xff");
        assert_eq!(VLine::new(0x10).to_string(), "line 0x10");
    }

    #[test]
    fn virtual_and_physical_are_distinct_types() {
        fn takes_phys(_: PAddr) {}
        takes_phys(PAddr::new(1));
        // VAddr would not compile here; the distinction is the point.
    }

    #[test]
    fn offset_saturates_at_zero() {
        assert_eq!(PAddr::new(10).offset(-100).raw(), 0);
        assert_eq!(PAddr::new(10).offset(100).raw(), 110);
    }
}
