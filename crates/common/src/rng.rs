//! Deterministic random-number plumbing.
//!
//! Every stochastic choice in the workspace — trace generation, frame
//! placement, mix selection — flows through [`DetRng`], seeded from an
//! explicit `u64` (optionally combined with a name). Two runs with the same
//! configuration are therefore bit-identical, which the integration tests
//! assert.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// FNV-1a hash of a byte string; used to derive per-workload seeds from
/// names without pulling in a hashing crate.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A deterministic random source.
///
/// ```
/// use psa_common::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// A generator seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { inner: SmallRng::seed_from_u64(seed) }
    }

    /// A generator whose stream depends on both `seed` and `name`, so each
    /// named workload gets an independent stream for any base seed.
    pub fn for_name(seed: u64, name: &str) -> Self {
        Self::new(seed ^ fnv1a(name.as_bytes()).rotate_left(17))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random()
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.random_range(0..bound)
    }

    /// Uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index into empty range");
        self.inner.random_range(0..len)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.random()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniformly pick a reference out of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Sample an index from non-negative `weights` proportionally.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Geometric-ish burst length in `[1, max]` with mean roughly `mean`.
    pub fn burst_len(&mut self, mean: f64, max: u64) -> u64 {
        debug_assert!(mean >= 1.0);
        let p = 1.0 / mean.max(1.0);
        let mut n = 1;
        while n < max && !self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_instances() {
        let mut a = DetRng::for_name(42, "milc");
        let mut b = DetRng::for_name(42, "milc");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn name_changes_stream() {
        let mut a = DetRng::for_name(42, "milc");
        let mut b = DetRng::for_name(42, "soplex");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(2);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut r = DetRng::new(3);
        for _ in 0..100 {
            let i = r.pick_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_pick_roughly_proportional() {
        let mut r = DetRng::new(4);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[r.pick_weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "got {frac}");
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a(b"lbm"), fnv1a(b"mcf"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn burst_len_in_range() {
        let mut r = DetRng::new(5);
        for _ in 0..500 {
            let n = r.burst_len(8.0, 32);
            assert!((1..=32).contains(&n));
        }
    }
}
