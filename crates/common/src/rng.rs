//! Deterministic random-number plumbing.
//!
//! Every stochastic choice in the workspace — trace generation, frame
//! placement, mix selection — flows through [`DetRng`], seeded from an
//! explicit `u64` (optionally combined with a name). Two runs with the same
//! configuration are therefore bit-identical, which the integration tests
//! assert.
//!
//! The generator is a hand-rolled xoshiro256++ (seeded through SplitMix64)
//! so the workspace carries no external RNG dependency and builds with no
//! registry access. It is a statistical PRNG, not a cryptographic one —
//! exactly what a simulator needs.

/// FNV-1a hash of a byte string; used to derive per-workload seeds from
/// names without pulling in a hashing crate.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One step of SplitMix64 — used to expand a `u64` seed into the
/// xoshiro256++ state so that similar seeds still yield unrelated streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic random source.
///
/// ```
/// use psa_common::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

crate::persist_struct!(DetRng { state });

impl DetRng {
    /// A generator seeded from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            state: [0; 4].map(|_| splitmix64(&mut sm)),
        }
    }

    /// A generator whose stream depends on both `seed` and `name`, so each
    /// named workload gets an independent stream for any base seed.
    pub fn for_name(seed: u64, name: &str) -> Self {
        Self::new(seed ^ fnv1a(name.as_bytes()).rotate_left(17))
    }

    /// Next raw 64-bit value (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`, bias-free (Lemire's widening
    /// multiply with rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            // Rejection zone is < 2^64 mod bound; `wrapping_neg % bound`
            // computes it without 128-bit division. The zone is itself
            // < bound, so `low >= bound` accepts without evaluating the
            // modulo at all — the division only runs in the rare draws
            // (probability < bound / 2^64) where `low` lands under bound.
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index into empty range");
        self.below(len as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniformly pick a reference out of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Sample an index from non-negative `weights` proportionally.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        self.pick_weighted_total(weights, total)
    }

    /// [`pick_weighted`](Self::pick_weighted) with the sum precomputed by
    /// the caller. Hot loops that draw from a fixed mix can sum the
    /// weights once (in the same left-to-right order `iter().sum()`
    /// uses, so the f64 result is bit-identical) and skip the per-draw
    /// re-summation.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or `total` is not positive.
    #[inline]
    pub fn pick_weighted_total(&mut self, weights: &[f64], total: f64) -> usize {
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut target = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Geometric-ish burst length in `[1, max]` with mean roughly `mean`.
    pub fn burst_len(&mut self, mean: f64, max: u64) -> u64 {
        debug_assert!(mean >= 1.0);
        let p = 1.0 / mean.max(1.0);
        let mut n = 1;
        while n < max && !self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_across_instances() {
        let mut a = DetRng::for_name(42, "milc");
        let mut b = DetRng::for_name(42, "milc");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn name_changes_stream() {
        let mut a = DetRng::for_name(42, "milc");
        let mut b = DetRng::for_name(42, "soplex");
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(2);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn weighted_pick_respects_zero_weights() {
        let mut r = DetRng::new(3);
        for _ in 0..100 {
            let i = r.pick_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn weighted_pick_roughly_proportional() {
        let mut r = DetRng::new(4);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[r.pick_weighted(&[1.0, 3.0])] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "got {frac}");
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a(b"lbm"), fnv1a(b"mcf"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn burst_len_in_range() {
        let mut r = DetRng::new(5);
        for _ in 0..500 {
            let n = r.burst_len(8.0, 32);
            assert!((1..=32).contains(&n));
        }
    }
}
