//! Zero-cost-when-disabled observability primitives.
//!
//! Every component of the simulated machine (core, caches, DRAM, the PSA
//! prefetching module) owns a handful of these primitives; the simulator
//! enables them all when [`ObsConfig::enabled`] is set and leaves them
//! disabled (the default) otherwise. A disabled primitive is one `bool`
//! test per hook — no allocation, no arithmetic, no side effects — so
//! instrumented runs with observability off remain bit-identical to
//! uninstrumented builds and pay effectively nothing in wall time.
//!
//! Three kinds of primitive exist:
//!
//! * [`Counter`] — a monotonically increasing event count;
//! * [`Histogram`] — a power-of-two-bucketed latency/occupancy
//!   distribution with exact `total`/`sum`/`max` moments, so its totals
//!   can be reconciled against the aggregate report counters;
//! * [`EventRing`] — a sampling ring buffer of structured [`Event`]s,
//!   exportable as Chrome `trace_event` JSON
//!   ([`ObsReport::to_chrome_trace`]) for timeline inspection in
//!   `chrome://tracing` / Perfetto.
//!
//! Observability state is *never* part of the checkpoint byte stream:
//! it is reset at the warm-up boundary so that, like every report
//! counter, it covers exactly the measured window, whether the run
//! warmed up cold or restored a checkpoint.
//!
//! # Example
//!
//! ```
//! use psa_common::obs::{Counter, Histogram};
//!
//! let mut h = Histogram::new(true);
//! h.record(3);
//! h.record(900);
//! assert_eq!(h.total(), 2);
//! assert_eq!(h.sum(), 903);
//! assert_eq!(h.max(), 900);
//!
//! let mut off = Counter::disabled();
//! off.inc();
//! assert_eq!(off.get(), 0, "disabled primitives observe nothing");
//! ```

/// Observability configuration, carried by the simulator's `SimConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. When false (the default) every hook in the machine
    /// is a no-op and runs are bit-identical to an uninstrumented build.
    pub enabled: bool,
    /// Capacity of the structured-event ring buffer; once full, the
    /// oldest events are overwritten.
    pub ring_capacity: u32,
    /// Sampling period for high-frequency events (retires, cache misses,
    /// MSHR traffic): one in `sample_every` is recorded. Rare events
    /// (watchdog snapshots) are always recorded.
    pub sample_every: u32,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            ring_capacity: 4096,
            sample_every: 64,
        }
    }
}

impl ObsConfig {
    /// The layer switched fully on with default ring/sampling shape.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Validate the shape; both knobs must be positive when enabled.
    ///
    /// # Errors
    ///
    /// Returns a static description of the offending knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.enabled && self.ring_capacity == 0 {
            return Err("obs: ring_capacity must be positive");
        }
        if self.enabled && self.sample_every == 0 {
            return Err("obs: sample_every must be positive");
        }
        Ok(())
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    on: bool,
    n: u64,
}

impl Counter {
    /// A counter in the given state.
    pub fn new(on: bool) -> Self {
        Self { on, n: 0 }
    }

    /// A permanently silent counter (the default state of every hook).
    pub const fn disabled() -> Self {
        Self { on: false, n: 0 }
    }

    /// Whether this counter records anything.
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Count one event.
    #[inline]
    pub fn inc(&mut self) {
        if self.on {
            self.n += 1;
        }
    }

    /// Count `k` events.
    #[inline]
    pub fn add(&mut self, k: u64) {
        if self.on {
            self.n += k;
        }
    }

    /// The count so far.
    pub fn get(&self) -> u64 {
        self.n
    }

    /// Zero the count (used at the warm-up boundary so counters cover
    /// exactly the measured window).
    pub fn reset(&mut self) {
        self.n = 0;
    }
}

/// Number of power-of-two buckets (zero bucket + one per bit); covers
/// the full `u64` value range.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `v` with `floor(log2(v)) == i - 1`
/// (bucket 0 counts `v == 0`), so bucket boundaries are
/// `0, 1, 2, 4, 8, …` — coarse in absolute terms but exact in the
/// moments: `total`, `sum` and `max` are tracked precisely and are the
/// values reconciliation tests compare against aggregate counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    on: bool,
    buckets: [u64; HIST_BUCKETS],
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Histogram {
    /// A histogram in the given state.
    pub fn new(on: bool) -> Self {
        Self {
            on,
            buckets: [0; HIST_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// A permanently silent histogram.
    pub const fn disabled() -> Self {
        Self {
            on: false,
            buckets: [0; HIST_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Whether this histogram records anything.
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        if !self.on {
            return;
        }
        let bucket = match v {
            0 => 0,
            _ => v.ilog2() as usize + 1,
        };
        self.buckets[bucket] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 with no samples.
    #[allow(clippy::cast_precision_loss)]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Clear all samples (warm-up boundary reset).
    pub fn reset(&mut self) {
        self.buckets = [0; HIST_BUCKETS];
        self.total = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs, in
    /// ascending order. Bucket 0 has lower bound 0; bucket `i > 0`
    /// spans `[2^(i-1), 2^i)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }

    /// A self-contained summary for export.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            total: self.total,
            sum: self.sum,
            max: self.max,
            mean: self.mean(),
            buckets: self.nonzero_buckets(),
        }
    }
}

/// Exportable snapshot of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub total: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample (0.0 when empty).
    pub mean: f64,
    /// Non-empty `(bucket_lower_bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

/// Observability bundle for one prefetcher instance: how bursty its
/// candidate emission is and how its predictions fared. Carried by the
/// `Observed` wrapper in `psa-prefetchers` and surfaced through the
/// `Prefetcher::obs` trait hook.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrefetcherObs {
    /// Candidates emitted per training access (degree distribution).
    pub candidates_per_access: Histogram,
    /// Requests actually issued to the memory system.
    pub issued: Counter,
    /// Issued prefetches that completed into a cache.
    pub fills: Counter,
    /// Prefetched blocks that were demanded (useful).
    pub useful: Counter,
    /// Prefetched blocks evicted unused.
    pub useless: Counter,
}

impl PrefetcherObs {
    /// A recording bundle.
    pub fn enabled() -> Self {
        Self {
            candidates_per_access: Histogram::new(true),
            issued: Counter::new(true),
            fills: Counter::new(true),
            useful: Counter::new(true),
            useless: Counter::new(true),
        }
    }

    /// Clear everything recorded so far (warm-up boundary reset).
    pub fn reset(&mut self) {
        self.candidates_per_access.reset();
        self.issued.reset();
        self.fills.reset();
        self.useful.reset();
        self.useless.reset();
    }
}

/// The structured event vocabulary of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A core retired an instruction (`arg` = instructions retired so far).
    Retire,
    /// An L2C demand access missed (`arg` = physical line).
    L2cMiss,
    /// An MSHR entry was allocated (`arg` = occupancy after allocation).
    MshrAlloc,
    /// An MSHR entry drained/freed (`arg` = occupancy after the drain).
    MshrFree,
    /// The PSA module issued a prefetch (`arg` = physical line).
    PrefetchIssue,
    /// A prefetched block filled into a cache (`arg` = physical line).
    PrefetchFill,
    /// Set-Dueling selected a competitor on a leader set
    /// (`arg` = competitor id: 0 PSA, 1 PSA-2MB).
    SdSelect,
    /// The forward-progress watchdog fired (`arg` = cycles since the last
    /// progress event). Always recorded, never sampled.
    Watchdog,
}

/// Number of [`EventKind`] variants (per-kind sampling accounting).
pub const EVENT_KINDS: usize = 8;

impl EventKind {
    /// Every kind, in declaration (= `repr`) order.
    pub const ALL: [EventKind; EVENT_KINDS] = [
        EventKind::Retire,
        EventKind::L2cMiss,
        EventKind::MshrAlloc,
        EventKind::MshrFree,
        EventKind::PrefetchIssue,
        EventKind::PrefetchFill,
        EventKind::SdSelect,
        EventKind::Watchdog,
    ];

    /// Stable short name, used as the Chrome trace event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Retire => "retire",
            EventKind::L2cMiss => "l2c_miss",
            EventKind::MshrAlloc => "mshr_alloc",
            EventKind::MshrFree => "mshr_free",
            EventKind::PrefetchIssue => "prefetch_issue",
            EventKind::PrefetchFill => "prefetch_fill",
            EventKind::SdSelect => "sd_select",
            EventKind::Watchdog => "watchdog",
        }
    }

    /// Chrome trace category, grouping events by component.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::Retire => "cpu",
            EventKind::L2cMiss => "cache",
            EventKind::MshrAlloc | EventKind::MshrFree => "mshr",
            EventKind::PrefetchIssue | EventKind::PrefetchFill => "prefetch",
            EventKind::SdSelect => "dueling",
            EventKind::Watchdog => "watchdog",
        }
    }
}

/// One recorded machine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Simulated cycle at which it happened.
    pub cycle: u64,
    /// Core the event belongs to (shared components report core 0).
    pub core: u32,
    /// Kind-specific payload, see [`EventKind`].
    pub arg: u64,
}

/// A sampling ring buffer of [`Event`]s.
///
/// High-frequency events are decimated: each kind keeps its own `seen`
/// count and only every `sample_every`-th observation is stored, so the
/// ring holds a uniform sample per kind rather than whatever the noisiest
/// producer last wrote. Once the ring is full the oldest stored events
/// are overwritten; `seen` counts remain exact either way.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventRing {
    on: bool,
    sample_every: u32,
    capacity: usize,
    buf: Vec<Event>,
    head: usize,
    seen: [u64; EVENT_KINDS],
    stored: [u64; EVENT_KINDS],
}

impl EventRing {
    /// A recording ring with the given shape.
    pub fn new(capacity: u32, sample_every: u32) -> Self {
        Self {
            on: true,
            sample_every: sample_every.max(1),
            capacity: capacity.max(1) as usize,
            buf: Vec::new(),
            head: 0,
            seen: [0; EVENT_KINDS],
            stored: [0; EVENT_KINDS],
        }
    }

    /// A permanently silent ring (records nothing, allocates nothing).
    pub const fn disabled() -> Self {
        Self {
            on: false,
            sample_every: 1,
            capacity: 0,
            buf: Vec::new(),
            head: 0,
            seen: [0; EVENT_KINDS],
            stored: [0; EVENT_KINDS],
        }
    }

    /// Whether this ring records anything.
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Observe a high-frequency event; one in `sample_every` is stored.
    #[inline]
    pub fn record(&mut self, kind: EventKind, cycle: u64, core: u32, arg: u64) {
        if !self.on {
            return;
        }
        let k = kind as usize;
        self.seen[k] += 1;
        if self.seen[k] % u64::from(self.sample_every) != 1 && self.sample_every != 1 {
            return;
        }
        self.store(Event {
            kind,
            cycle,
            core,
            arg,
        });
    }

    /// Observe a rare event; always stored, never decimated.
    #[inline]
    pub fn record_rare(&mut self, kind: EventKind, cycle: u64, core: u32, arg: u64) {
        if !self.on {
            return;
        }
        self.seen[kind as usize] += 1;
        self.store(Event {
            kind,
            cycle,
            core,
            arg,
        });
    }

    fn store(&mut self, ev: Event) {
        self.stored[ev.kind as usize] += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Exact number of observations per kind (sampled and unsampled).
    pub fn seen(&self, kind: EventKind) -> u64 {
        self.seen[kind as usize]
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The stored events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Forget everything recorded so far (warm-up boundary reset); the
    /// ring keeps recording.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.seen = [0; EVENT_KINDS];
        self.stored = [0; EVENT_KINDS];
    }
}

/// Everything the observability layer captured over one measured window:
/// named counters, named histograms, and the sampled event timeline.
///
/// Produced by the simulator when observability is enabled; `None`
/// otherwise. This is plain data — it borrows nothing from the machine —
/// so callers can hold it after the run ends.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// Named counters, e.g. `("module.issued", 1234)`.
    pub counters: Vec<(&'static str, u64)>,
    /// Named histogram summaries, e.g. `("core0.load_to_use", …)`.
    pub histograms: Vec<(&'static str, HistSummary)>,
    /// Sampled events, oldest first.
    pub events: Vec<Event>,
    /// Exact per-kind observation counts `(name, seen)` — `seen` is the
    /// true number of occurrences, of which only a sample is in `events`.
    pub seen: Vec<(&'static str, u64)>,
    /// The sampling period in force.
    pub sample_every: u32,
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl ObsReport {
    /// Render the sampled event timeline as Chrome `trace_event` JSON
    /// (the "JSON Array Format" inside an object, accepted by
    /// `chrome://tracing` and Perfetto).
    ///
    /// Each event becomes an instant event (`"ph": "i"`); `ts` is the
    /// simulated cycle (the viewer's microseconds are our cycles), `pid`
    /// is 0 and `tid` is the core index. Per-kind exact observation
    /// counts and the sampling period travel in `otherData` so a viewer
    /// of the trace knows how much was decimated.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\n\"traceEvents\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"name\": \"");
            escape_json(ev.kind.name(), &mut out);
            out.push_str("\", \"cat\": \"");
            escape_json(ev.kind.category(), &mut out);
            out.push_str("\", \"ph\": \"i\", \"s\": \"t\", \"ts\": ");
            out.push_str(&ev.cycle.to_string());
            out.push_str(", \"pid\": 0, \"tid\": ");
            out.push_str(&ev.core.to_string());
            out.push_str(", \"args\": {\"v\": ");
            out.push_str(&ev.arg.to_string());
            out.push_str("}}");
        }
        out.push_str("\n],\n\"displayTimeUnit\": \"ns\",\n\"otherData\": {\"sample_every\": ");
        out.push_str(&self.sample_every.to_string());
        for (name, seen) in &self.seen {
            out.push_str(", \"seen_");
            escape_json(name, &mut out);
            out.push_str("\": ");
            out.push_str(&seen.to_string());
        }
        out.push_str("}\n}\n");
        out
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }
}

/// Process-wide counters of the checkpoint/result storage tier
/// (`psa-store` and the legacy flat-file path). Unlike the per-component
/// primitives above, these are always-on atomics: storage-tier health
/// must be observable even in runs where the simulation-level obs layer
/// is disabled, and the store is shared across worker threads. They are
/// surfaced through the experiment executor's `ExecStats` and the
/// `executor.store` section of every `BENCH_*.json` (schema v4).
pub mod store {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// One storage-tier counter set. The canonical instance is
    /// [`global`]; a separate instance exists only in tests.
    #[derive(Debug, Default)]
    pub struct StoreObs {
        /// Disk-tier entries served and verified (checksum passed).
        pub hits: AtomicU64,
        /// Disk-tier lookups that found no usable entry.
        pub misses: AtomicU64,
        /// Transient-IO retries performed by the bounded retry layer.
        pub retries: AtomicU64,
        /// Entries dropped because their bytes failed validation —
        /// at read time or during recovery-on-open.
        pub quarantined: AtomicU64,
        /// Live payload bytes salvaged by recovery-on-open.
        pub recovered_bytes: AtomicU64,
        /// Store writes that failed after retries (degraded to
        /// memory-only / cold-warm-up operation, never to wrong bits).
        pub write_failures: AtomicU64,
        /// Faults actually injected by a configured `FaultPlan`.
        pub injected_faults: AtomicU64,
    }

    /// A point-in-time copy of the counters, for deltas and JSON export.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct StoreSnapshot {
        /// See [`StoreObs::hits`].
        pub hits: u64,
        /// See [`StoreObs::misses`].
        pub misses: u64,
        /// See [`StoreObs::retries`].
        pub retries: u64,
        /// See [`StoreObs::quarantined`].
        pub quarantined: u64,
        /// See [`StoreObs::recovered_bytes`].
        pub recovered_bytes: u64,
        /// See [`StoreObs::write_failures`].
        pub write_failures: u64,
        /// See [`StoreObs::injected_faults`].
        pub injected_faults: u64,
    }

    impl StoreObs {
        /// A fresh zeroed counter set.
        pub const fn new() -> Self {
            Self {
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                quarantined: AtomicU64::new(0),
                recovered_bytes: AtomicU64::new(0),
                write_failures: AtomicU64::new(0),
                injected_faults: AtomicU64::new(0),
            }
        }

        /// Capture the current counter values.
        pub fn snapshot(&self) -> StoreSnapshot {
            StoreSnapshot {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                retries: self.retries.load(Ordering::Relaxed),
                quarantined: self.quarantined.load(Ordering::Relaxed),
                recovered_bytes: self.recovered_bytes.load(Ordering::Relaxed),
                write_failures: self.write_failures.load(Ordering::Relaxed),
                injected_faults: self.injected_faults.load(Ordering::Relaxed),
            }
        }
    }

    static GLOBAL: StoreObs = StoreObs::new();

    /// The process-wide storage-tier counters.
    pub fn global() -> &'static StoreObs {
        &GLOBAL
    }
}

/// Prometheus text exposition (format version 0.0.4) rendering.
///
/// A [`prom::PromText`] accumulates metric families — `# HELP` / `# TYPE`
/// headers followed by samples — and enforces the exposition grammar as
/// it goes: metric and label names are validated against the Prometheus
/// character set, label values and help strings are escaped, and a
/// family's header is written exactly once. The output is what a
/// `/metrics` endpoint serves to a scraper.
///
/// The renderer is deliberately dependency-free and content-agnostic:
/// callers decide which registries to walk. [`prom::store_metrics`]
/// renders the always-on storage-tier counters of [`store`]; the
/// experiment executor and any server front-end render their own
/// counters through the same writer.
pub mod prom {
    use super::store;

    /// The two Prometheus metric kinds this codebase exports.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum MetricKind {
        /// Monotonically increasing; name should end in `_total` (or a
        /// unit suffix such as `_seconds_total`).
        Counter,
        /// A value that can go up and down (depths, capacities, uptime).
        Gauge,
    }

    impl MetricKind {
        /// The `# TYPE` keyword.
        pub fn keyword(self) -> &'static str {
            match self {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
            }
        }
    }

    /// Whether `name` is a valid Prometheus metric name:
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    pub fn valid_metric_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Whether `name` is a valid Prometheus label name:
    /// `[a-zA-Z_][a-zA-Z0-9_]*` and not a double-underscore reserved name.
    pub fn valid_label_name(name: &str) -> bool {
        let mut chars = name.chars();
        match chars.next() {
            Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
            _ => return false,
        }
        chars.all(|c| c.is_ascii_alphanumeric() || c == '_') && !name.starts_with("__")
    }

    /// Escape a label value: backslash, double quote and newline.
    fn escape_label_value(v: &str, out: &mut String) {
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
    }

    /// Escape a help string: backslash and newline.
    fn escape_help(v: &str, out: &mut String) {
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
    }

    /// Render a sample value the way Prometheus expects: integers
    /// without a fractional part, everything else via Rust's shortest
    /// round-trip `f64` formatting.
    fn format_value(v: f64, out: &mut String) {
        if v.is_nan() {
            out.push_str("NaN");
        } else if v.is_infinite() {
            out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
        } else if v == v.trunc() && v.abs() < (1u64 << 53) as f64 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
    }

    /// An in-progress Prometheus text exposition document.
    #[derive(Debug, Default)]
    pub struct PromText {
        out: String,
        current_family: String,
    }

    impl PromText {
        /// An empty document.
        pub fn new() -> Self {
            Self::default()
        }

        /// Start a metric family: write its `# HELP` and `# TYPE` lines.
        /// Every subsequent [`PromText::sample`] must use this name until
        /// the next `family` call.
        ///
        /// # Panics
        ///
        /// Panics when `name` is not a valid metric name — an invalid
        /// exposition would make the whole endpoint unscrapable, so this
        /// is a programming error, not an input error.
        pub fn family(&mut self, name: &str, kind: MetricKind, help: &str) {
            assert!(valid_metric_name(name), "invalid metric name {name:?}");
            self.out.push_str("# HELP ");
            self.out.push_str(name);
            self.out.push(' ');
            escape_help(help, &mut self.out);
            self.out.push_str("\n# TYPE ");
            self.out.push_str(name);
            self.out.push(' ');
            self.out.push_str(kind.keyword());
            self.out.push('\n');
            self.current_family = name.to_string();
        }

        /// Add one sample line to the current family.
        ///
        /// # Panics
        ///
        /// Panics when no family is open or a label name is invalid (see
        /// [`PromText::family`] for why this is an assertion).
        pub fn sample(&mut self, labels: &[(&str, &str)], value: f64) {
            assert!(
                !self.current_family.is_empty(),
                "sample before any family()"
            );
            let name = self.current_family.clone();
            self.out.push_str(&name);
            if !labels.is_empty() {
                self.out.push('{');
                for (i, (k, v)) in labels.iter().enumerate() {
                    assert!(valid_label_name(k), "invalid label name {k:?}");
                    if i > 0 {
                        self.out.push(',');
                    }
                    self.out.push_str(k);
                    self.out.push_str("=\"");
                    escape_label_value(v, &mut self.out);
                    self.out.push('"');
                }
                self.out.push('}');
            }
            self.out.push(' ');
            format_value(value, &mut self.out);
            self.out.push('\n');
        }

        /// Convenience: a whole single-sample counter family.
        pub fn counter(&mut self, name: &str, help: &str, value: u64) {
            self.family(name, MetricKind::Counter, help);
            #[allow(clippy::cast_precision_loss)]
            self.sample(&[], value as f64);
        }

        /// Convenience: a whole single-sample gauge family.
        pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
            self.family(name, MetricKind::Gauge, help);
            self.sample(&[], value);
        }

        /// The finished exposition body (`text/plain; version=0.0.4`).
        pub fn render(self) -> String {
            self.out
        }
    }

    /// Render the process-wide storage-tier counters ([`store::global`])
    /// as the `psa_store_*` family group.
    pub fn store_metrics(w: &mut PromText) {
        let s = store::global().snapshot();
        w.counter(
            "psa_store_hits_total",
            "Checkpoint/result store entries served and checksum-verified.",
            s.hits,
        );
        w.counter(
            "psa_store_misses_total",
            "Checkpoint/result store lookups that found no usable entry.",
            s.misses,
        );
        w.counter(
            "psa_store_retries_total",
            "Transient-IO retries performed by the store's bounded retry layer.",
            s.retries,
        );
        w.counter(
            "psa_store_quarantined_total",
            "Store entries dropped because their bytes failed validation.",
            s.quarantined,
        );
        w.counter(
            "psa_store_recovered_bytes_total",
            "Live payload bytes salvaged by store recovery-on-open.",
            s.recovered_bytes,
        );
        w.counter(
            "psa_store_write_failures_total",
            "Store writes that failed after retries (degraded, never wrong bits).",
            s.write_failures,
        );
        w.counter(
            "psa_store_injected_faults_total",
            "IO faults actually injected by a configured PSA_FAULT_PLAN.",
            s.injected_faults,
        );
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn name_validation() {
            assert!(valid_metric_name("psa_serve_jobs_total"));
            assert!(valid_metric_name("a:b_c1"));
            assert!(!valid_metric_name("1abc"));
            assert!(!valid_metric_name(""));
            assert!(!valid_metric_name("has space"));
            assert!(!valid_metric_name("has-dash"));
            assert!(valid_label_name("figure"));
            assert!(!valid_label_name("__reserved"));
            assert!(!valid_label_name("9lives"));
        }

        #[test]
        fn renders_families_and_samples() {
            let mut w = PromText::new();
            w.counter("jobs_total", "Jobs.", 3);
            w.family("http_requests_total", MetricKind::Counter, "By class.");
            w.sample(&[("class", "2xx")], 7.0);
            w.sample(&[("class", "5xx")], 0.0);
            w.gauge("depth", "Queue depth.", 2.5);
            let text = w.render();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines[0], "# HELP jobs_total Jobs.");
            assert_eq!(lines[1], "# TYPE jobs_total counter");
            assert_eq!(lines[2], "jobs_total 3");
            assert!(lines.contains(&"http_requests_total{class=\"2xx\"} 7"));
            assert!(lines.contains(&"http_requests_total{class=\"5xx\"} 0"));
            assert!(lines.contains(&"depth 2.5"));
            assert!(text.ends_with('\n'));
        }

        #[test]
        fn escapes_label_values_and_help() {
            let mut w = PromText::new();
            w.family("m", MetricKind::Gauge, "line\nbreak \\ done");
            w.sample(&[("l", "quo\"te\\back\nline")], 1.0);
            let text = w.render();
            assert!(text.contains("# HELP m line\\nbreak \\\\ done"));
            assert!(text.contains("m{l=\"quo\\\"te\\\\back\\nline\"} 1"));
        }

        #[test]
        fn store_metrics_cover_every_counter() {
            let mut w = PromText::new();
            store_metrics(&mut w);
            let text = w.render();
            for name in [
                "psa_store_hits_total",
                "psa_store_misses_total",
                "psa_store_retries_total",
                "psa_store_quarantined_total",
                "psa_store_recovered_bytes_total",
                "psa_store_write_failures_total",
                "psa_store_injected_faults_total",
            ] {
                assert!(
                    text.contains(&format!("# TYPE {name} counter")),
                    "missing {name}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_primitives_record_nothing() {
        let mut c = Counter::disabled();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);

        let mut h = Histogram::disabled();
        h.record(5);
        assert_eq!(h.total(), 0);
        assert_eq!(h.summary().buckets, vec![]);

        let mut r = EventRing::disabled();
        r.record(EventKind::Retire, 1, 0, 1);
        r.record_rare(EventKind::Watchdog, 1, 0, 1);
        assert!(r.is_empty());
        assert_eq!(r.seen(EventKind::Watchdog), 0);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new(true);
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.max(), 1000);
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4 → [4,8); 1000 → [512,1024).
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]
        );
        let before = h.clone();
        h.reset();
        assert_eq!(h.total(), 0);
        assert_ne!(h, before);
    }

    #[test]
    fn histogram_handles_extreme_samples() {
        let mut h = Histogram::new(true);
        h.record(u64::MAX);
        assert_eq!(h.total(), 1);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.nonzero_buckets(), vec![(1 << 63, 1)]);
    }

    #[test]
    fn ring_samples_and_wraps() {
        let mut r = EventRing::new(4, 2);
        for i in 0..20 {
            r.record(EventKind::Retire, i, 0, i);
        }
        // Observations 1,3,5,… are stored (1st of every 2); capacity 4
        // keeps the newest four: cycles 12,14,16,18.
        assert_eq!(r.seen(EventKind::Retire), 20);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![12, 14, 16, 18]);

        r.record_rare(EventKind::Watchdog, 99, 1, 7);
        let evs = r.events();
        assert_eq!(evs.last().unwrap().kind, EventKind::Watchdog);
        assert_eq!(evs.last().unwrap().core, 1);

        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.seen(EventKind::Retire), 0);
    }

    #[test]
    fn sample_every_one_stores_everything() {
        let mut r = EventRing::new(8, 1);
        for i in 0..5 {
            r.record(EventKind::L2cMiss, i, 0, 0);
        }
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn chrome_trace_is_parseable_shape() {
        let mut r = EventRing::new(8, 1);
        r.record(EventKind::Retire, 10, 0, 1);
        r.record_rare(EventKind::Watchdog, 20, 2, 500);
        let report = ObsReport {
            counters: vec![("module.issued", 3)],
            histograms: vec![],
            events: r.events(),
            seen: vec![("retire", r.seen(EventKind::Retire))],
            sample_every: 1,
        };
        let trace = report.to_chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"name\": \"retire\""));
        assert!(trace.contains("\"tid\": 2"));
        assert!(trace.contains("\"seen_retire\": 1"));
        // Balanced braces/brackets as a cheap well-formedness check; the
        // strict parser in psa-sim round-trips it in an integration test.
        assert_eq!(
            trace.matches('{').count(),
            trace.matches('}').count(),
            "{trace}"
        );
        assert_eq!(trace.matches('[').count(), trace.matches(']').count());
    }

    #[test]
    fn obs_config_validates() {
        assert!(ObsConfig::default().validate().is_ok());
        assert!(ObsConfig::on().validate().is_ok());
        let bad = ObsConfig {
            enabled: true,
            ring_capacity: 0,
            sample_every: 64,
        };
        assert!(bad.validate().is_err());
        let bad2 = ObsConfig {
            enabled: true,
            ring_capacity: 16,
            sample_every: 0,
        };
        assert!(bad2.validate().is_err());
    }

    #[test]
    fn report_lookup_helpers() {
        let mut h = Histogram::new(true);
        h.record(7);
        let r = ObsReport {
            counters: vec![("a", 1)],
            histograms: vec![("h", h.summary())],
            events: vec![],
            seen: vec![],
            sample_every: 64,
        };
        assert_eq!(r.counter("a"), Some(1));
        assert_eq!(r.counter("b"), None);
        assert_eq!(r.histogram("h").unwrap().sum, 7);
    }
}
