//! Physical frame allocation with randomised 4KB placement.
//!
//! Physical memory is divided into 2MB *regions*. A region is consumed
//! either whole (backing one 2MB huge page) or fragmented into 512 4KB
//! frames that are handed out in random order across random regions. The
//! randomisation is the load-bearing property: it guarantees that two
//! virtually-consecutive 4KB pages are almost never physically consecutive,
//! which is why a physical-address prefetcher must not cross 4KB frame
//! boundaries blindly — the premise of the whole paper.

use psa_common::{DetRng, PAddr, PageSize};

/// Number of 4KB frames in one 2MB region.
const FRAMES_PER_REGION: u64 = 512;

/// Configuration for [`PhysMem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysMemConfig {
    /// Total physical memory in bytes. Table I: 8GB single-core, 32GB
    /// multi-core.
    pub bytes: u64,
}

impl Default for PhysMemConfig {
    fn default() -> Self {
        Self {
            bytes: 8 * 1024 * 1024 * 1024,
        }
    }
}

/// Errors from physical allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysMemError {
    /// No region left to open or allocate.
    OutOfMemory {
        /// Which page size the failed request asked for.
        requested: PageSize,
    },
    /// Configured size is not a positive multiple of 2MB.
    BadSize {
        /// The offending byte count.
        bytes: u64,
    },
}

impl std::fmt::Display for PhysMemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhysMemError::OutOfMemory { requested } => {
                write!(f, "out of physical memory allocating a {requested} frame")
            }
            PhysMemError::BadSize { bytes } => {
                write!(
                    f,
                    "physical memory size must be a positive multiple of 2MB, got {bytes}"
                )
            }
        }
    }
}

impl std::error::Error for PhysMemError {}

#[derive(Debug, Clone)]
enum Region {
    /// Fragmented into 4KB frames; holds the not-yet-allocated slot indices.
    Fragmented(Vec<u16>),
}

impl Default for Region {
    fn default() -> Self {
        Region::Fragmented(Vec::new())
    }
}

impl psa_common::Persist for Region {
    fn save(&self, e: &mut psa_common::Enc) {
        let Region::Fragmented(slots) = self;
        slots.save(e);
    }
    fn load(&mut self, d: &mut psa_common::Dec) -> Result<(), psa_common::CodecError> {
        let Region::Fragmented(slots) = self;
        slots.load(d)
    }
}

/// The machine's physical memory allocator, shared by all address spaces.
#[derive(Debug)]
pub struct PhysMem {
    config: PhysMemConfig,
    rng: DetRng,
    /// Region indices not yet opened, in randomised order (pop from back).
    free_regions: Vec<u32>,
    /// Regions opened for 4KB allocation that still have free slots, paired
    /// with their slot free-lists.
    open: Vec<(u32, Region)>,
    allocated_4k: u64,
    allocated_2m: u64,
}

// The capacity (`config`) is rebuilt from the simulation configuration; the
// RNG stream position and free lists are the allocator's state.
psa_common::persist_struct!(PhysMem {
    rng,
    free_regions,
    open,
    allocated_4k,
    allocated_2m,
});

impl PhysMem {
    /// Create an allocator over `config.bytes` of physical memory.
    ///
    /// # Errors
    ///
    /// Returns [`PhysMemError::BadSize`] unless the size is a positive
    /// multiple of 2MB.
    pub fn new(config: PhysMemConfig, seed: u64) -> Result<Self, PhysMemError> {
        let region_bytes = PageSize::Size2M.bytes();
        if config.bytes == 0 || !config.bytes.is_multiple_of(region_bytes) {
            return Err(PhysMemError::BadSize {
                bytes: config.bytes,
            });
        }
        let regions = (config.bytes / region_bytes) as u32;
        let mut rng = DetRng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut free_regions: Vec<u32> = (0..regions).collect();
        // Fisher-Yates shuffle so region opening order is random.
        for i in (1..free_regions.len()).rev() {
            let j = rng.index(i + 1);
            free_regions.swap(i, j);
        }
        Ok(Self {
            config,
            rng,
            free_regions,
            open: Vec::new(),
            allocated_4k: 0,
            allocated_2m: 0,
        })
    }

    /// Allocate one frame of `size`; returns its base physical address.
    ///
    /// 4KB frames come from random slots of random fragmented regions; 2MB
    /// frames consume a whole region and are naturally 2MB-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`PhysMemError::OutOfMemory`] when physical memory is
    /// exhausted.
    pub fn alloc(&mut self, size: PageSize) -> Result<PAddr, PhysMemError> {
        match size {
            PageSize::Size2M => {
                let region = self
                    .free_regions
                    .pop()
                    .ok_or(PhysMemError::OutOfMemory { requested: size })?;
                self.allocated_2m += 1;
                Ok(region_base(region))
            }
            PageSize::Size4K => {
                if self.open.is_empty() {
                    self.open_region(size)?;
                }
                // Pick a random open region to draw from, so consecutive 4KB
                // allocations land in scattered regions.
                let oi = self.rng.index(self.open.len());
                let (region, Region::Fragmented(slots)) = &mut self.open[oi];
                let region = *region;
                let si = self.rng.index(slots.len());
                let slot = slots.swap_remove(si);
                if slots.is_empty() {
                    self.open.swap_remove(oi);
                }
                self.allocated_4k += 1;
                Ok(PAddr::new(
                    region_base(region).raw() + u64::from(slot) * 4096,
                ))
            }
        }
    }

    fn open_region(&mut self, requested: PageSize) -> Result<(), PhysMemError> {
        let region = self
            .free_regions
            .pop()
            .ok_or(PhysMemError::OutOfMemory { requested })?;
        let slots: Vec<u16> = (0..FRAMES_PER_REGION as u16).collect();
        self.open.push((region, Region::Fragmented(slots)));
        Ok(())
    }

    /// Bytes currently allocated to 4KB frames.
    pub fn allocated_4k_bytes(&self) -> u64 {
        self.allocated_4k * PageSize::Size4K.bytes()
    }

    /// Bytes currently allocated to 2MB frames.
    pub fn allocated_2m_bytes(&self) -> u64 {
        self.allocated_2m * PageSize::Size2M.bytes()
    }

    /// Total configured physical bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.config.bytes
    }
}

fn region_base(region: u32) -> PAddr {
    PAddr::new(u64::from(region) * PageSize::Size2M.bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PhysMem {
        PhysMem::new(
            PhysMemConfig {
                bytes: 64 * 1024 * 1024,
            },
            99,
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(matches!(
            PhysMem::new(PhysMemConfig { bytes: 0 }, 1),
            Err(PhysMemError::BadSize { .. })
        ));
        assert!(matches!(
            PhysMem::new(
                PhysMemConfig {
                    bytes: 3 * 1024 * 1024
                },
                1
            ),
            Err(PhysMemError::BadSize { .. })
        ));
    }

    #[test]
    fn huge_frames_are_2mb_aligned_and_unique() {
        let mut pm = small();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            let a = pm.alloc(PageSize::Size2M).unwrap();
            assert_eq!(a.raw() % PageSize::Size2M.bytes(), 0);
            assert!(seen.insert(a.raw()));
        }
        assert!(matches!(
            pm.alloc(PageSize::Size2M),
            Err(PhysMemError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn small_frames_are_4kb_aligned_and_unique() {
        let mut pm = small();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let a = pm.alloc(PageSize::Size4K).unwrap();
            assert_eq!(a.raw() % 4096, 0);
            assert!(seen.insert(a.raw()));
            assert!(a.raw() < pm.capacity_bytes());
        }
    }

    #[test]
    fn consecutive_4k_allocations_are_rarely_adjacent() {
        // The property PPM exists for: back-to-back 4KB allocations (which a
        // process would map to consecutive virtual pages) must not be
        // physically contiguous in general.
        let mut pm = small();
        let addrs: Vec<u64> = (0..2000)
            .map(|_| pm.alloc(PageSize::Size4K).unwrap().raw())
            .collect();
        let adjacent = addrs
            .windows(2)
            .filter(|w| w[1] == w[0] + 4096 || w[0] == w[1] + 4096)
            .count();
        assert!(adjacent < 20, "too many adjacent frames: {adjacent}");
    }

    #[test]
    fn mixed_allocation_never_overlaps() {
        let mut pm = small();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut rng = DetRng::new(5);
        for _ in 0..600 {
            let size = if rng.chance(0.05) {
                PageSize::Size2M
            } else {
                PageSize::Size4K
            };
            if let Ok(a) = pm.alloc(size) {
                spans.push((a.raw(), a.raw() + size.bytes()));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "overlap between {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn accounting_tracks_allocations() {
        let mut pm = small();
        pm.alloc(PageSize::Size2M).unwrap();
        pm.alloc(PageSize::Size4K).unwrap();
        pm.alloc(PageSize::Size4K).unwrap();
        assert_eq!(pm.allocated_2m_bytes(), 2 * 1024 * 1024);
        assert_eq!(pm.allocated_4k_bytes(), 8192);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = small();
        let mut b = small();
        for _ in 0..100 {
            assert_eq!(
                a.alloc(PageSize::Size4K).unwrap(),
                b.alloc(PageSize::Size4K).unwrap()
            );
        }
    }

    #[test]
    fn exhaustion_reports_out_of_memory() {
        let mut pm = PhysMem::new(
            PhysMemConfig {
                bytes: 2 * 1024 * 1024,
            },
            1,
        )
        .unwrap();
        for _ in 0..FRAMES_PER_REGION {
            pm.alloc(PageSize::Size4K).unwrap();
        }
        let err = pm.alloc(PageSize::Size4K).unwrap_err();
        assert!(err.to_string().contains("4KB"));
    }
}
