//! Demand-paged address spaces with a THP-style large-page policy.
//!
//! On the first touch of a 2MB virtual region the policy decides — in the
//! spirit of Linux Transparent Huge Pages — whether to back the whole
//! region with one 2MB frame or fault its 4KB pages in individually. The
//! decision is a deterministic hash of the region number, so a workload's
//! `huge_fraction` directly controls the fraction of its memory in 2MB
//! pages (what Figure 3 of the paper measures on real hardware).

use psa_common::fxhash::{FxHashMap, FxHashSet};
use psa_common::rng::fnv1a;
use psa_common::{PageSize, Persist, VAddr};

use crate::frames::PhysMem;
use crate::page_table::{MapError, PageTable, Translation, Walk};

/// Policy knobs for one address space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AspaceConfig {
    /// Probability that a 2MB virtual region is backed by a huge page.
    /// 1.0 ≈ `THP=always` on a lightly fragmented machine; 0.0 ≈ `THP=never`.
    pub huge_fraction: f64,
    /// Seed for the per-region backing decisions.
    pub seed: u64,
}

impl Default for AspaceConfig {
    fn default() -> Self {
        // The paper measures ~85% of allocated memory in 2MB pages across
        // its workloads on a real THP-enabled system (§V-A).
        Self {
            huge_fraction: 0.85,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
enum RegionBacking {
    Huge(Translation),
    /// Region faulted as individual 4KB pages.
    #[default]
    Small,
}

impl psa_common::Persist for RegionBacking {
    fn save(&self, e: &mut psa_common::Enc) {
        match self {
            RegionBacking::Huge(t) => {
                e.put_u8(0);
                t.save(e);
            }
            RegionBacking::Small => e.put_u8(1),
        }
    }
    fn load(&mut self, d: &mut psa_common::Dec) -> Result<(), psa_common::CodecError> {
        *self = match d.get_u8()? {
            0 => {
                let mut t = Translation::default();
                t.load(d)?;
                RegionBacking::Huge(t)
            }
            1 => RegionBacking::Small,
            _ => return Err(psa_common::CodecError::Corrupt("region backing tag")),
        };
        Ok(())
    }
}

/// One process's virtual address space.
#[derive(Debug)]
pub struct AddressSpace {
    config: AspaceConfig,
    page_table: Option<PageTable>,
    regions: FxHashMap<u64, RegionBacking>,
    /// Fast-path mapping cache for 4KB pages (region → vpage → translation).
    small_pages: FxHashMap<u64, Translation>,
    /// Distinct 4KB-page-sized chunks touched inside huge-backed regions —
    /// the touch-weighted usage metric (see [`Self::huge_usage_fraction`]).
    touched_in_huge: FxHashSet<u64>,
    bytes_4k: u64,
    bytes_2m: u64,
    /// One-entry MRU cache: the last translated 4KB virtual page number
    /// and its translation. Mappings are never removed or changed once
    /// established, so a hit can return without touching the hash maps —
    /// and bursty access streams hit almost every time. Derived state:
    /// invalidated on restore, never persisted.
    last_vpage: u64,
    last_trans: Option<Translation>,
}

// The THP policy knobs (`config`) are rebuilt from the simulation
// configuration; everything the demand pager has learned is state. The
// MRU fields are a derived accelerator: excluded from the byte stream
// (which matches the historical layout exactly) and invalidated on load.
impl Persist for AddressSpace {
    fn save(&self, e: &mut psa_common::Enc) {
        self.page_table.save(e);
        self.regions.save(e);
        self.small_pages.save(e);
        self.touched_in_huge.save(e);
        self.bytes_4k.save(e);
        self.bytes_2m.save(e);
    }

    fn load(&mut self, d: &mut psa_common::Dec) -> Result<(), psa_common::CodecError> {
        self.page_table.load(d)?;
        self.regions.load(d)?;
        self.small_pages.load(d)?;
        self.touched_in_huge.load(d)?;
        self.bytes_4k.load(d)?;
        self.bytes_2m.load(d)?;
        self.last_vpage = u64::MAX;
        self.last_trans = None;
        Ok(())
    }
}

impl AddressSpace {
    /// Create an empty address space.
    pub fn new(config: AspaceConfig) -> Self {
        Self {
            config,
            page_table: None,
            regions: FxHashMap::default(),
            small_pages: FxHashMap::default(),
            touched_in_huge: FxHashSet::default(),
            bytes_4k: 0,
            bytes_2m: 0,
            last_vpage: u64::MAX,
            last_trans: None,
        }
    }

    fn decide_huge(&self, region: u64) -> bool {
        let h = fnv1a(&[self.config.seed.to_le_bytes(), region.to_le_bytes()].concat());
        (h >> 11) as f64 / (1u64 << 53) as f64 <= self.config.huge_fraction
    }

    fn table(&mut self, phys: &mut PhysMem) -> Result<&mut PageTable, MapError> {
        if self.page_table.is_none() {
            self.page_table = Some(PageTable::new(phys)?);
        }
        Ok(self.page_table.as_mut().expect("just created"))
    }

    /// Translate `vaddr`, demand-mapping the page on first touch.
    ///
    /// # Errors
    ///
    /// Fails only when physical memory is exhausted.
    pub fn translate_or_map(
        &mut self,
        phys: &mut PhysMem,
        vaddr: VAddr,
    ) -> Result<Translation, MapError> {
        // MRU fast path: same 4KB page as the previous translation. A huge
        // page's touched-chunk set already holds this chunk (it was
        // inserted when the cache entry was established), so the repeat
        // touch is a pure no-op on every structure.
        let vpage = vaddr.page_number(PageSize::Size4K);
        if self.last_vpage == vpage {
            if let Some(t) = self.last_trans {
                return Ok(t);
            }
        }
        let region = vaddr.page_number(PageSize::Size2M);
        let t = match self.regions.get(&region) {
            Some(RegionBacking::Huge(t)) => {
                self.touched_in_huge.insert(vpage);
                *t
            }
            Some(RegionBacking::Small) => match self.small_pages.get(&vpage) {
                Some(t) => *t,
                None => self.map_small(phys, vaddr)?,
            },
            None => {
                if self.decide_huge(region) {
                    let pbase = phys.alloc(PageSize::Size2M)?;
                    let vbase = vaddr.page_base(PageSize::Size2M);
                    let t = Translation {
                        vbase,
                        pbase,
                        size: PageSize::Size2M,
                    };
                    self.table(phys)?
                        .map(phys, vbase, pbase, PageSize::Size2M)?;
                    self.regions.insert(region, RegionBacking::Huge(t));
                    self.bytes_2m += PageSize::Size2M.bytes();
                    self.touched_in_huge.insert(vpage);
                    t
                } else {
                    self.regions.insert(region, RegionBacking::Small);
                    self.map_small(phys, vaddr)?
                }
            }
        };
        self.last_vpage = vpage;
        self.last_trans = Some(t);
        Ok(t)
    }

    fn map_small(&mut self, phys: &mut PhysMem, vaddr: VAddr) -> Result<Translation, MapError> {
        let pbase = phys.alloc(PageSize::Size4K)?;
        let vbase = vaddr.page_base(PageSize::Size4K);
        let t = Translation {
            vbase,
            pbase,
            size: PageSize::Size4K,
        };
        self.table(phys)?
            .map(phys, vbase, pbase, PageSize::Size4K)?;
        self.small_pages
            .insert(vaddr.page_number(PageSize::Size4K), t);
        self.bytes_4k += PageSize::Size4K.bytes();
        Ok(t)
    }

    /// Walk the page table for `vaddr`, optionally skipping levels resolved
    /// by the MMU caches. The page must already be mapped.
    pub(crate) fn walk(&self, vaddr: VAddr, skip_levels: u8, start_node: u32) -> Option<Walk> {
        self.page_table
            .as_ref()
            .map(|pt| pt.walk_from(vaddr, skip_levels, start_node))
    }

    /// Interior node reached after `levels` levels, for MMU-cache fills.
    pub(crate) fn node_at(&self, vaddr: VAddr, levels: u8) -> Option<u32> {
        self.page_table
            .as_ref()
            .and_then(|pt| pt.node_at(vaddr, levels))
    }

    /// Bytes currently mapped via 4KB pages.
    pub fn bytes_4k(&self) -> u64 {
        self.bytes_4k
    }

    /// Bytes currently mapped via 2MB pages.
    pub fn bytes_2m(&self) -> u64 {
        self.bytes_2m
    }

    /// Interior page-table nodes backing this space, each holding one 4KB
    /// frame — lets the `PSA_CHECK=1` checker reconcile the frame
    /// allocator's books against every consumer.
    pub fn page_table_nodes(&self) -> usize {
        self.page_table.as_ref().map_or(0, |pt| pt.node_count())
    }

    /// Fraction of the *touched* working set backed by 2MB pages — the
    /// Figure 3 metric. Touch-weighted (distinct 4KB chunks actually
    /// accessed) rather than allocation-weighted, because one sparse touch
    /// allocates a whole 2MB frame and would otherwise drown the 4KB side
    /// of the ratio; the touch-weighted form is also what matters to the
    /// prefetcher (the probability that an accessed block sits in a huge
    /// page). Zero when nothing is mapped yet.
    pub fn huge_usage_fraction(&self) -> f64 {
        let huge = self.touched_in_huge.len() as u64 * PageSize::Size4K.bytes();
        let total = self.bytes_4k + huge;
        if total == 0 {
            0.0
        } else {
            huge as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::PhysMemConfig;
    use psa_common::PAddr;

    fn phys() -> PhysMem {
        PhysMem::new(
            PhysMemConfig {
                bytes: 512 * 1024 * 1024,
            },
            3,
        )
        .unwrap()
    }

    #[test]
    fn always_huge_maps_2mb() {
        let mut pm = phys();
        let mut a = AddressSpace::new(AspaceConfig {
            huge_fraction: 1.0,
            seed: 1,
        });
        let t = a
            .translate_or_map(&mut pm, VAddr::new(0x1234_5678))
            .unwrap();
        assert_eq!(t.size, PageSize::Size2M);
        assert_eq!(a.huge_usage_fraction(), 1.0);
    }

    #[test]
    fn never_huge_maps_4kb() {
        let mut pm = phys();
        let mut a = AddressSpace::new(AspaceConfig {
            huge_fraction: 0.0,
            seed: 1,
        });
        let t = a
            .translate_or_map(&mut pm, VAddr::new(0x1234_5678))
            .unwrap();
        assert_eq!(t.size, PageSize::Size4K);
        assert_eq!(a.huge_usage_fraction(), 0.0);
    }

    #[test]
    fn translation_is_stable_across_touches() {
        let mut pm = phys();
        let mut a = AddressSpace::new(AspaceConfig {
            huge_fraction: 0.5,
            seed: 9,
        });
        let v = VAddr::new(0xdead_b000);
        let t1 = a.translate_or_map(&mut pm, v).unwrap();
        let t2 = a
            .translate_or_map(&mut pm, VAddr::new(0xdead_b040))
            .unwrap();
        assert_eq!(t1.pbase, t2.pbase);
        assert_eq!(t1.apply(v), t2.apply(v));
    }

    #[test]
    fn huge_fraction_controls_usage() {
        let mut pm = phys();
        let mut a = AddressSpace::new(AspaceConfig {
            huge_fraction: 0.5,
            seed: 42,
        });
        // Touch 128 distinct 2MB regions sparsely (one 4KB touch each, so
        // small-backed regions contribute one 4KB page).
        for r in 0..128u64 {
            a.translate_or_map(&mut pm, VAddr::new(r << 21)).unwrap();
        }
        let huge_regions = a.bytes_2m() / PageSize::Size2M.bytes();
        assert!((40..=90).contains(&huge_regions), "got {huge_regions}");
    }

    #[test]
    fn adjacent_virtual_4k_pages_not_physically_adjacent() {
        let mut pm = phys();
        let mut a = AddressSpace::new(AspaceConfig {
            huge_fraction: 0.0,
            seed: 7,
        });
        let mut adjacent = 0;
        let mut prev: Option<PAddr> = None;
        for page in 0..512u64 {
            let t = a
                .translate_or_map(&mut pm, VAddr::new(page * 4096))
                .unwrap();
            if let Some(p) = prev {
                if t.pbase.raw() == p.raw() + 4096 {
                    adjacent += 1;
                }
            }
            prev = Some(t.pbase);
        }
        assert!(adjacent < 8, "physical layout too contiguous: {adjacent}");
    }

    #[test]
    fn huge_page_preserves_virtual_contiguity_physically() {
        // Inside a 2MB page, virtual adjacency IS physical adjacency — the
        // property that makes page-crossing prefetching safe there.
        let mut pm = phys();
        let mut a = AddressSpace::new(AspaceConfig {
            huge_fraction: 1.0,
            seed: 7,
        });
        let base = 0x4000_0000u64;
        let t0 = a.translate_or_map(&mut pm, VAddr::new(base)).unwrap();
        for off in (0..PageSize::Size2M.bytes()).step_by(4096) {
            let t = a.translate_or_map(&mut pm, VAddr::new(base + off)).unwrap();
            assert_eq!(t.apply(VAddr::new(base + off)).raw(), t0.pbase.raw() + off);
        }
    }

    #[test]
    fn decision_is_deterministic_per_seed() {
        let mut pm1 = phys();
        let mut pm2 = phys();
        let mut a = AddressSpace::new(AspaceConfig {
            huge_fraction: 0.5,
            seed: 11,
        });
        let mut b = AddressSpace::new(AspaceConfig {
            huge_fraction: 0.5,
            seed: 11,
        });
        for r in 0..64u64 {
            let v = VAddr::new(r << 21);
            let ta = a.translate_or_map(&mut pm1, v).unwrap();
            let tb = b.translate_or_map(&mut pm2, v).unwrap();
            assert_eq!(ta.size, tb.size);
        }
    }
}
