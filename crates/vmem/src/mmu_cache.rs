//! MMU caches (x86 "page structure caches").
//!
//! These small fully-associative caches remember interior page-table nodes
//! so that a page walk can skip the upper radix levels. Level `i` caches the
//! node reached *after* consuming virtual-address bits down to
//! `LEVEL_SHIFTS[i]`; a hit at the PDE cache (level 2) leaves only the PT
//! access, a hit at the PDPTE cache (level 1) leaves PD (+PT), and so on.

use psa_common::VAddr;

use crate::page_table::LEVEL_SHIFTS;

/// Sizes of the three page-structure caches (PML4E, PDPTE, PDE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuCacheConfig {
    /// PML4E-cache entries (level 0 prefixes).
    pub pml4e: usize,
    /// PDPTE-cache entries (level 1 prefixes).
    pub pdpte: usize,
    /// PDE-cache entries (level 2 prefixes).
    pub pde: usize,
}

impl Default for MmuCacheConfig {
    fn default() -> Self {
        // Typical published shapes (e.g. Bhattacharjee, MICRO'13).
        Self {
            pml4e: 4,
            pdpte: 4,
            pde: 32,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PscEntry {
    prefix: u64,
    node: u32,
    last_use: u64,
    valid: bool,
}

psa_common::persist_struct!(PscEntry {
    prefix,
    node,
    last_use,
    valid,
});

#[derive(Debug)]
struct PscLevel {
    entries: Vec<PscEntry>,
}

psa_common::persist_struct!(PscLevel { entries });

impl PscLevel {
    fn new(n: usize) -> Self {
        Self {
            entries: vec![
                PscEntry {
                    prefix: 0,
                    node: 0,
                    last_use: 0,
                    valid: false
                };
                n
            ],
        }
    }

    fn lookup(&mut self, prefix: u64, stamp: u64) -> Option<u32> {
        self.entries
            .iter_mut()
            .find(|e| e.valid && e.prefix == prefix)
            .map(|e| {
                e.last_use = stamp;
                e.node
            })
    }

    fn fill(&mut self, prefix: u64, node: u32, stamp: u64) {
        if self.entries.is_empty() {
            return;
        }
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.valid && e.prefix == prefix)
        {
            e.node = node;
            e.last_use = stamp;
            return;
        }
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_use } else { 0 })
            .expect("non-empty");
        *victim = PscEntry {
            prefix,
            node,
            last_use: stamp,
            valid: true,
        };
    }
}

/// A hit in the MMU caches: how many radix levels the walk may skip and the
/// interior node to resume from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PscHit {
    /// Levels already resolved (1..=3). The walk starts at this level.
    pub skip_levels: u8,
    /// Page-table node id to resume from.
    pub node: u32,
}

/// The three page-structure caches of one MMU.
#[derive(Debug)]
pub struct MmuCaches {
    levels: [PscLevel; 3],
    stamp: u64,
}

psa_common::persist_struct!(MmuCaches { levels, stamp });

impl MmuCaches {
    /// Build the caches.
    pub fn new(config: MmuCacheConfig) -> Self {
        Self {
            levels: [
                PscLevel::new(config.pml4e),
                PscLevel::new(config.pdpte),
                PscLevel::new(config.pde),
            ],
            stamp: 0,
        }
    }

    fn prefix(vaddr: VAddr, level: usize) -> u64 {
        vaddr.raw() >> LEVEL_SHIFTS[level]
    }

    /// Find the deepest cached prefix for `vaddr`, if any.
    pub fn lookup(&mut self, vaddr: VAddr) -> Option<PscHit> {
        self.stamp += 1;
        let stamp = self.stamp;
        // Deepest first: PDE, then PDPTE, then PML4E.
        for level in (0..3).rev() {
            let prefix = Self::prefix(vaddr, level);
            if let Some(node) = self.levels[level].lookup(prefix, stamp) {
                return Some(PscHit {
                    skip_levels: level as u8 + 1,
                    node,
                });
            }
        }
        None
    }

    /// After a walk resolved the node following level `level` for `vaddr`,
    /// cache it.
    pub fn fill(&mut self, vaddr: VAddr, level: u8, node: u32) {
        debug_assert!(level < 3);
        self.stamp += 1;
        let stamp = self.stamp;
        let prefix = Self::prefix(vaddr, usize::from(level));
        self.levels[usize::from(level)].fill(prefix, node, stamp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caches() -> MmuCaches {
        MmuCaches::new(MmuCacheConfig {
            pml4e: 2,
            pdpte: 2,
            pde: 4,
        })
    }

    #[test]
    fn empty_caches_miss() {
        let mut c = caches();
        assert_eq!(c.lookup(VAddr::new(0x1234_5678)), None);
    }

    #[test]
    fn deepest_level_wins() {
        let mut c = caches();
        let v = VAddr::new(0x7f12_3456_7000);
        c.fill(v, 0, 10);
        c.fill(v, 2, 30);
        let hit = c.lookup(v).unwrap();
        assert_eq!(hit.skip_levels, 3);
        assert_eq!(hit.node, 30);
    }

    #[test]
    fn pde_entry_covers_whole_2mb_region_only() {
        let mut c = caches();
        let v = VAddr::new(0x4000_0000);
        c.fill(v, 2, 5);
        // Same 2MB region → hit.
        assert!(c.lookup(VAddr::new(0x401f_ffff)).is_some());
        // Next 2MB region → the PDE prefix differs.
        assert!(c.lookup(VAddr::new(0x4020_0000)).is_none());
    }

    #[test]
    fn pml4e_entry_covers_512gb_region() {
        let mut c = caches();
        c.fill(VAddr::new(0), 0, 1);
        let hit = c.lookup(VAddr::new(0x7f_ffff_ffff)).unwrap();
        assert_eq!(hit.skip_levels, 1);
    }

    #[test]
    fn lru_within_level() {
        let mut c = caches();
        let region = |n: u64| VAddr::new(n << 21);
        c.fill(region(0), 2, 0);
        c.fill(region(1), 2, 1);
        c.fill(region(2), 2, 2);
        c.fill(region(3), 2, 3);
        assert!(c.lookup(region(0)).is_some()); // refresh
        c.fill(region(4), 2, 4); // evicts region 1
        assert!(c.lookup(region(0)).is_some());
        assert!(c.lookup(region(1)).is_none());
    }

    #[test]
    fn zero_sized_level_is_inert() {
        let mut c = MmuCaches::new(MmuCacheConfig {
            pml4e: 0,
            pdpte: 0,
            pde: 0,
        });
        c.fill(VAddr::new(0x1000), 2, 9);
        assert_eq!(c.lookup(VAddr::new(0x1000)), None);
    }
}
