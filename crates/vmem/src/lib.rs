//! Virtual-memory substrate for the *Page Size Aware Cache Prefetching*
//! reproduction.
//!
//! The paper's mechanism (PPM) exists because lower-level cache prefetchers
//! see only **physical** addresses and cannot assume physical contiguity
//! beyond a 4KB frame. This crate makes that premise *true inside the
//! simulator* rather than assuming it:
//!
//! * [`frames`] — a physical memory allocator that hands out 4KB frames at
//!   **randomised** physical locations (so virtually-adjacent 4KB pages are
//!   almost never physically adjacent) and 2MB-aligned huge frames.
//! * [`aspace`] — per-process demand-paged address spaces with a Linux
//!   THP-style policy deciding which 2MB virtual regions get huge pages.
//! * [`page_table`] — a genuine 4-level x86-64-style radix page table whose
//!   interior nodes occupy simulated physical frames (so page walks cost
//!   real memory accesses).
//! * [`tlb`] — set-associative TLBs supporting both page sizes (split L1
//!   DTLB arrays, unified L2 STLB), per Table I of the paper.
//! * [`mmu_cache`] — page-structure caches that skip upper walk levels.
//! * [`mmu`] — the per-core MMU façade combining the above; it returns the
//!   translation **metadata including the page size**, which is exactly
//!   what PPM snoops on the L1D miss path.
//!
//! # Example
//!
//! ```
//! use psa_vmem::{AddressSpace, AspaceConfig, PhysMem, PhysMemConfig};
//! use psa_common::{PageSize, VAddr};
//!
//! let mut phys = PhysMem::new(PhysMemConfig::default(), 1).unwrap();
//! let mut aspace = AddressSpace::new(AspaceConfig { huge_fraction: 1.0, seed: 7 });
//! let t = aspace.translate_or_map(&mut phys, VAddr::new(0x4000_0000)).unwrap();
//! assert_eq!(t.size, PageSize::Size2M);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aspace;
pub mod frames;
pub mod mmu;
pub mod mmu_cache;
pub mod page_table;
pub mod tlb;

pub use aspace::{AddressSpace, AspaceConfig};
pub use frames::{PhysMem, PhysMemConfig, PhysMemError};
pub use mmu::{Mmu, MmuConfig, TlbHitLevel, TranslationOutcome};
pub use page_table::{MapError, Translation, Walk};
pub use tlb::{Tlb, TlbConfig};
