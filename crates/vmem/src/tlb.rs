//! Set-associative TLBs with concurrent 4KB/2MB support.
//!
//! x86 L1 DTLBs keep separate arrays per page size; L2 STLBs are unified
//! but still index by the page number of the entry's own size. Both shapes
//! reduce to "one set-associative array per page size", which is what this
//! type implements. True-LRU replacement within a set, matching Table I.

use psa_common::geometry::checked_log2;
use psa_common::{PageSize, VAddr};

/// Shape of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Entries in the 4KB array.
    pub entries_4k: usize,
    /// Entries in the 2MB array.
    pub entries_2m: usize,
    /// Associativity (shared by both arrays).
    pub ways: usize,
}

impl TlbConfig {
    /// The paper's L1 DTLB: 64-entry, 4-way (2MB array sized 32).
    pub fn l1_dtlb() -> Self {
        Self {
            entries_4k: 64,
            entries_2m: 32,
            ways: 4,
        }
    }

    /// The paper's unified L2 TLB: 1536-entry, 12-way.
    pub fn l2_stlb() -> Self {
        Self {
            entries_4k: 1536,
            entries_2m: 1536,
            ways: 12,
        }
    }
}

/// Error constructing a TLB with an unrealisable shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbConfigError(String);

impl std::fmt::Display for TlbConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid TLB shape: {}", self.0)
    }
}

impl std::error::Error for TlbConfigError {}

#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    vpage: u64,
    last_use: u64,
    valid: bool,
}

psa_common::persist_struct!(TlbEntry {
    vpage,
    last_use,
    valid,
});

#[derive(Debug)]
struct SizeArray {
    sets: usize,
    ways: usize,
    entries: Vec<TlbEntry>,
}

// `sets`/`ways` are geometry; the entry array is the state.
psa_common::persist_struct!(SizeArray { entries });

impl SizeArray {
    fn new(total: usize, ways: usize) -> Result<Self, TlbConfigError> {
        if total == 0 || ways == 0 || !total.is_multiple_of(ways) {
            return Err(TlbConfigError(format!("{total} entries / {ways} ways")));
        }
        let sets = total / ways;
        checked_log2("tlb sets", sets as u64).map_err(|e| TlbConfigError(e.to_string()))?;
        Ok(Self {
            sets,
            ways,
            entries: vec![
                TlbEntry {
                    vpage: 0,
                    last_use: 0,
                    valid: false
                };
                total
            ],
        })
    }

    fn set_range(&self, vpage: u64) -> std::ops::Range<usize> {
        let set = (vpage as usize) & (self.sets - 1);
        set * self.ways..(set + 1) * self.ways
    }

    fn lookup(&mut self, vpage: u64, stamp: u64) -> bool {
        let range = self.set_range(vpage);
        for e in &mut self.entries[range] {
            if e.valid && e.vpage == vpage {
                e.last_use = stamp;
                return true;
            }
        }
        false
    }

    fn fill(&mut self, vpage: u64, stamp: u64) {
        let range = self.set_range(vpage);
        let set = &mut self.entries[range];
        if let Some(e) = set.iter_mut().find(|e| e.valid && e.vpage == vpage) {
            e.last_use = stamp;
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| if e.valid { e.last_use } else { 0 })
            .expect("non-empty set");
        *victim = TlbEntry {
            vpage,
            last_use: stamp,
            valid: true,
        };
    }
}

/// Statistics for one TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl TlbStats {
    /// Hit fraction in `[0, 1]`; 0 when unused.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One TLB level holding translations for both page sizes.
#[derive(Debug)]
pub struct Tlb {
    arrays: [SizeArray; 2],
    stamp: u64,
    stats: TlbStats,
}

psa_common::persist_struct!(TlbStats { hits, misses });

psa_common::persist_struct!(Tlb {
    arrays,
    stamp,
    stats,
});

impl Tlb {
    /// Build a TLB of the given shape.
    ///
    /// # Errors
    ///
    /// Fails unless each array divides into a power-of-two number of sets.
    pub fn new(config: TlbConfig) -> Result<Self, TlbConfigError> {
        Ok(Self {
            arrays: [
                SizeArray::new(config.entries_4k, config.ways.min(config.entries_4k))?,
                SizeArray::new(config.entries_2m, config.ways.min(config.entries_2m))?,
            ],
            stamp: 0,
            stats: TlbStats::default(),
        })
    }

    fn array(&mut self, size: PageSize) -> &mut SizeArray {
        &mut self.arrays[match size {
            PageSize::Size4K => 0,
            PageSize::Size2M => 1,
        }]
    }

    /// Probe for the page of `size` containing `vaddr`. Updates LRU and
    /// stats.
    pub fn lookup(&mut self, vaddr: VAddr, size: PageSize) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let vpage = vaddr.page_number(size);
        let hit = self.array(size).lookup(vpage, stamp);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        hit
    }

    /// Probe without knowing the page size (checks both arrays), as a real
    /// lookup must before the walk reveals the size. Returns the hitting
    /// size.
    pub fn lookup_any(&mut self, vaddr: VAddr) -> Option<PageSize> {
        self.stamp += 1;
        let stamp = self.stamp;
        for size in [PageSize::Size4K, PageSize::Size2M] {
            let vpage = vaddr.page_number(size);
            if self.array(size).lookup(vpage, stamp) {
                self.stats.hits += 1;
                return Some(size);
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Non-mutating residency check (no LRU or statistics update) — used
    /// by IPCP++-style "prefetch across 4KB only if the target page is TLB
    /// resident" policies.
    pub fn peek(&self, vaddr: VAddr) -> Option<PageSize> {
        for (i, size) in [PageSize::Size4K, PageSize::Size2M].into_iter().enumerate() {
            let vpage = vaddr.page_number(size);
            let array = &self.arrays[i];
            let set = (vpage as usize) & (array.sets - 1);
            if array.entries[set * array.ways..(set + 1) * array.ways]
                .iter()
                .any(|e| e.valid && e.vpage == vpage)
            {
                return Some(size);
            }
        }
        None
    }

    /// Install the translation for the page of `size` containing `vaddr`.
    pub fn fill(&mut self, vaddr: VAddr, size: PageSize) {
        self.stamp += 1;
        let stamp = self.stamp;
        let vpage = vaddr.page_number(size);
        self.array(size).fill(vpage, stamp);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries_4k: 8,
            entries_2m: 4,
            ways: 2,
        })
        .unwrap()
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut t = tiny();
        let a = VAddr::new(0x1234_5000);
        assert!(!t.lookup(a, PageSize::Size4K));
        t.fill(a, PageSize::Size4K);
        assert!(t.lookup(a, PageSize::Size4K));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn sizes_are_separate_arrays() {
        let mut t = tiny();
        let a = VAddr::new(0x0060_0000);
        t.fill(a, PageSize::Size2M);
        assert!(!t.lookup(a, PageSize::Size4K));
        assert!(t.lookup(a, PageSize::Size2M));
    }

    #[test]
    fn one_2m_entry_covers_512_4k_pages_worth() {
        let mut t = tiny();
        let base = VAddr::new(0x4000_0000);
        t.fill(base, PageSize::Size2M);
        // Any address in the 2MB page hits the same entry — the TLB-reach
        // argument for large pages.
        for off in [0u64, 0x1000, 0x12_3456, 0x1f_ffff] {
            assert!(t.lookup(VAddr::new(base.raw() + off), PageSize::Size2M));
        }
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        // 8 entries, 2 ways → 4 sets for 4K. Pages mapping to the same set
        // differ by a multiple of 4 pages.
        let mut t = tiny();
        let page = |n: u64| VAddr::new(n * 4096);
        t.fill(page(0), PageSize::Size4K);
        t.fill(page(4), PageSize::Size4K);
        assert!(t.lookup(page(0), PageSize::Size4K)); // refresh 0
        t.fill(page(8), PageSize::Size4K); // evicts 4
        assert!(t.lookup(page(0), PageSize::Size4K));
        assert!(!t.lookup(page(4), PageSize::Size4K));
        assert!(t.lookup(page(8), PageSize::Size4K));
    }

    #[test]
    fn lookup_any_reports_size() {
        let mut t = tiny();
        let a = VAddr::new(0x4000_0000);
        assert_eq!(t.lookup_any(a), None);
        t.fill(a, PageSize::Size2M);
        assert_eq!(t.lookup_any(a), Some(PageSize::Size2M));
    }

    #[test]
    fn refill_same_page_does_not_duplicate() {
        let mut t = tiny();
        let a = VAddr::new(0x1000);
        t.fill(a, PageSize::Size4K);
        t.fill(a, PageSize::Size4K);
        // Another page in the same set must still fit in the second way.
        t.fill(VAddr::new(0x5000), PageSize::Size4K);
        assert!(t.lookup(a, PageSize::Size4K));
        assert!(t.lookup(VAddr::new(0x5000), PageSize::Size4K));
    }

    #[test]
    fn paper_shapes_construct() {
        Tlb::new(TlbConfig::l1_dtlb()).unwrap();
        Tlb::new(TlbConfig::l2_stlb()).unwrap();
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Tlb::new(TlbConfig {
            entries_4k: 0,
            entries_2m: 4,
            ways: 2
        })
        .is_err());
        assert!(Tlb::new(TlbConfig {
            entries_4k: 6,
            entries_2m: 4,
            ways: 2
        })
        .is_err());
    }

    #[test]
    fn hit_rate_reporting() {
        let mut t = tiny();
        let a = VAddr::new(0x9000);
        t.fill(a, PageSize::Size4K);
        for _ in 0..3 {
            t.lookup(a, PageSize::Size4K);
        }
        t.lookup(VAddr::new(0xdead_0000), PageSize::Size4K);
        assert!((t.stats().hit_rate() - 0.75).abs() < 1e-12);
    }
}
