//! The per-core MMU: TLB hierarchy + MMU caches + page walker.
//!
//! [`Mmu::translate`] is the single entry point the core model calls before
//! every memory access. Its [`TranslationOutcome`] carries the translated
//! physical address, the **page size** (the metadata PPM propagates to the
//! L1D MSHR on a miss), the TLB-side latency, and the physical page-table
//! lines a walk must fetch through the cache hierarchy (empty on TLB hits).

use psa_common::{PAddr, PLine, PageSize, VAddr};

use crate::aspace::AddressSpace;
use crate::frames::PhysMem;
use crate::mmu_cache::{MmuCacheConfig, MmuCaches};
use crate::page_table::MapError;
use crate::tlb::{Tlb, TlbConfig, TlbConfigError, TlbStats};

/// MMU shape, defaulting to Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmuConfig {
    /// L1 DTLB shape (64-entry, 4-way).
    pub dtlb: TlbConfig,
    /// L2 STLB shape (1536-entry, 12-way).
    pub stlb: TlbConfig,
    /// L1 DTLB access latency in cycles (1).
    pub dtlb_latency: u64,
    /// L2 STLB access latency in cycles (8).
    pub stlb_latency: u64,
    /// Page-structure cache shapes.
    pub psc: MmuCacheConfig,
}

impl Default for MmuConfig {
    fn default() -> Self {
        Self {
            dtlb: TlbConfig::l1_dtlb(),
            stlb: TlbConfig::l2_stlb(),
            dtlb_latency: 1,
            stlb_latency: 8,
            psc: MmuCacheConfig::default(),
        }
    }
}

/// Where a translation was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbHitLevel {
    /// L1 DTLB hit.
    L1,
    /// L2 STLB hit.
    L2,
    /// Full or partial page walk.
    Walk,
}

/// Result of translating one access.
#[derive(Debug, Clone)]
pub struct TranslationOutcome {
    /// Translated physical address.
    pub paddr: PAddr,
    /// Size of the containing page — the PPM bit's payload.
    pub size: PageSize,
    /// TLB lookup latency in cycles (excludes page-walk memory time).
    pub tlb_latency: u64,
    /// Physical PTE lines the walker must read through the memory
    /// hierarchy; empty on TLB hits.
    pub walk_lines: Vec<PLine>,
    /// Which level satisfied the translation.
    pub level: TlbHitLevel,
}

/// MMU statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct MmuStats {
    /// Translations performed.
    pub translations: u64,
    /// Page walks performed.
    pub walks: u64,
    /// Total PTE reads issued by walks.
    pub walk_accesses: u64,
}

/// The per-core MMU.
#[derive(Debug)]
pub struct Mmu {
    config: MmuConfig,
    dtlb: Tlb,
    stlb: Tlb,
    psc: MmuCaches,
    stats: MmuStats,
}

psa_common::persist_struct!(MmuStats {
    translations,
    walks,
    walk_accesses,
});

psa_common::persist_struct!(Mmu {
    dtlb,
    stlb,
    psc,
    stats,
});

impl Mmu {
    /// Build an MMU of the given shape.
    ///
    /// # Errors
    ///
    /// Fails if either TLB shape is unrealisable.
    pub fn new(config: MmuConfig) -> Result<Self, TlbConfigError> {
        Ok(Self {
            config,
            dtlb: Tlb::new(config.dtlb)?,
            stlb: Tlb::new(config.stlb)?,
            psc: MmuCaches::new(config.psc),
            stats: MmuStats::default(),
        })
    }

    /// Translate `vaddr`, demand-mapping the page on first touch.
    ///
    /// # Errors
    ///
    /// Fails only when physical memory is exhausted.
    pub fn translate(
        &mut self,
        aspace: &mut AddressSpace,
        phys: &mut PhysMem,
        vaddr: VAddr,
    ) -> Result<TranslationOutcome, MapError> {
        self.stats.translations += 1;
        // Ensure the mapping exists (demand paging; the minor-fault cost is
        // not modelled, matching trace-driven simulator practice).
        let translation = aspace.translate_or_map(phys, vaddr)?;
        let paddr = translation.apply(vaddr);
        let size = translation.size;

        if self.dtlb.lookup(vaddr, size) {
            return Ok(TranslationOutcome {
                paddr,
                size,
                tlb_latency: self.config.dtlb_latency,
                walk_lines: Vec::new(),
                level: TlbHitLevel::L1,
            });
        }
        let mut latency = self.config.dtlb_latency + self.config.stlb_latency;
        if self.stlb.lookup(vaddr, size) {
            self.dtlb.fill(vaddr, size);
            return Ok(TranslationOutcome {
                paddr,
                size,
                tlb_latency: latency,
                walk_lines: Vec::new(),
                level: TlbHitLevel::L2,
            });
        }

        // Page walk, shortened by the page-structure caches.
        self.stats.walks += 1;
        let (skip, start) = match self.psc.lookup(vaddr) {
            Some(hit) => (hit.skip_levels, hit.node),
            None => (0, 0),
        };
        let walk = aspace
            .walk(vaddr, skip, start)
            .expect("table exists after mapping");
        debug_assert!(walk.translation.is_some(), "walked an unmapped page");
        let walk_lines: Vec<PLine> = walk.steps.iter().map(|s| s.pte_line).collect();
        self.stats.walk_accesses += walk_lines.len() as u64;
        // Fill the MMU caches with every interior node the walk resolved.
        for step in &walk.steps {
            if step.level < 3 && usize::from(step.level) < 3 {
                if let Some(node) = aspace.node_at(vaddr, step.level + 1) {
                    // Leaf PD entries (2MB pages) are the TLB's job, not the
                    // PSC's: only cache levels that lead to another node.
                    let is_leaf = size == PageSize::Size2M && step.level == 2;
                    if !is_leaf {
                        self.psc.fill(vaddr, step.level, node);
                    }
                }
            }
        }
        self.stlb.fill(vaddr, size);
        self.dtlb.fill(vaddr, size);
        latency += 1; // walker dispatch overhead
        Ok(TranslationOutcome {
            paddr,
            size,
            tlb_latency: latency,
            walk_lines,
            level: TlbHitLevel::Walk,
        })
    }

    /// MMU statistics.
    pub fn stats(&self) -> MmuStats {
        self.stats
    }

    /// L1 DTLB statistics.
    pub fn dtlb_stats(&self) -> TlbStats {
        self.dtlb.stats()
    }

    /// L2 STLB statistics.
    pub fn stlb_stats(&self) -> TlbStats {
        self.stlb.stats()
    }

    /// Whether the page containing `vaddr` is resident in either TLB level
    /// (no LRU/statistics side effects) — the IPCP++ crossing condition.
    pub fn tlb_resident(&self, vaddr: VAddr) -> bool {
        self.dtlb.peek(vaddr).is_some() || self.stlb.peek(vaddr).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspace::AspaceConfig;
    use crate::frames::PhysMemConfig;

    fn setup(huge: f64) -> (PhysMem, AddressSpace, Mmu) {
        let phys = PhysMem::new(
            PhysMemConfig {
                bytes: 512 * 1024 * 1024,
            },
            3,
        )
        .unwrap();
        let aspace = AddressSpace::new(AspaceConfig {
            huge_fraction: huge,
            seed: 5,
        });
        let mmu = Mmu::new(MmuConfig::default()).unwrap();
        (phys, aspace, mmu)
    }

    #[test]
    fn first_touch_walks_then_hits() {
        let (mut phys, mut aspace, mut mmu) = setup(0.0);
        let v = VAddr::new(0x1000_0000);
        let first = mmu.translate(&mut aspace, &mut phys, v).unwrap();
        assert_eq!(first.level, TlbHitLevel::Walk);
        assert_eq!(first.walk_lines.len(), 4);
        let second = mmu.translate(&mut aspace, &mut phys, v).unwrap();
        assert_eq!(second.level, TlbHitLevel::L1);
        assert!(second.walk_lines.is_empty());
        assert_eq!(second.tlb_latency, 1);
        assert_eq!(first.paddr, second.paddr);
    }

    #[test]
    fn huge_page_walk_is_shorter() {
        let (mut phys, mut aspace, mut mmu) = setup(1.0);
        let out = mmu
            .translate(&mut aspace, &mut phys, VAddr::new(0x4000_0000))
            .unwrap();
        assert_eq!(out.size, PageSize::Size2M);
        assert_eq!(out.walk_lines.len(), 3);
    }

    #[test]
    fn psc_shortens_sibling_walks() {
        let (mut phys, mut aspace, mut mmu) = setup(0.0);
        // First 4KB page: full 4-step walk.
        let a = mmu
            .translate(&mut aspace, &mut phys, VAddr::new(0x0))
            .unwrap();
        assert_eq!(a.walk_lines.len(), 4);
        // A sibling page in the same 2MB region, far enough to miss both
        // TLBs? It won't miss (TLBs are big) — so blow the DTLB/STLB by
        // touching it only via a fresh MMU sharing nothing. Instead verify
        // via a fresh MMU that the PSC effect needs warm caches:
        let b = mmu
            .translate(&mut aspace, &mut phys, VAddr::new(0x1000))
            .unwrap();
        // TLB hit for the region? No: different 4KB page → TLB miss, but
        // PDE cache is warm → only the PT step.
        assert_eq!(b.level, TlbHitLevel::Walk);
        assert_eq!(b.walk_lines.len(), 1);
    }

    #[test]
    fn page_size_metadata_flows_through() {
        let (mut phys, mut aspace, mut mmu) = setup(1.0);
        for off in [0u64, 0x1000, 0x10_0000] {
            let out = mmu
                .translate(&mut aspace, &mut phys, VAddr::new(0x8000_0000 + off))
                .unwrap();
            assert!(out.size.bit(), "PPM bit must read 2MB");
        }
    }

    #[test]
    fn stats_accumulate() {
        let (mut phys, mut aspace, mut mmu) = setup(0.0);
        for page in 0..10u64 {
            mmu.translate(&mut aspace, &mut phys, VAddr::new(page * 4096))
                .unwrap();
        }
        let s = mmu.stats();
        assert_eq!(s.translations, 10);
        assert_eq!(s.walks, 10);
        assert!(s.walk_accesses >= 10);
        assert_eq!(mmu.dtlb_stats().misses, 10);
    }

    #[test]
    fn stlb_catches_dtlb_capacity_misses() {
        let (mut phys, mut aspace, mut mmu) = setup(0.0);
        // Touch more 4KB pages than the 64-entry DTLB holds, then re-touch.
        for page in 0..256u64 {
            mmu.translate(&mut aspace, &mut phys, VAddr::new(page * 4096))
                .unwrap();
        }
        let mut l2_hits = 0;
        for page in 0..256u64 {
            let out = mmu
                .translate(&mut aspace, &mut phys, VAddr::new(page * 4096))
                .unwrap();
            if out.level == TlbHitLevel::L2 {
                l2_hits += 1;
            }
            assert_ne!(out.level, TlbHitLevel::Walk, "STLB holds 1536 entries");
        }
        assert!(
            l2_hits > 100,
            "most re-touches should be STLB hits, got {l2_hits}"
        );
    }
}
