//! A 4-level x86-64-style radix page table.
//!
//! Interior nodes (PML4, PDPT, PD, PT) each occupy one simulated 4KB
//! physical frame, so a page walk touches genuine physical cache lines that
//! the simulator charges through the memory hierarchy — reproducing why 2MB
//! pages help (one fewer level) and why TLB misses hurt.
//!
//! 2MB mappings terminate at the PD level (level 2); 4KB mappings at the PT
//! level (level 3), exactly as on x86-64.

use psa_common::{PAddr, PLine, PageSize, VAddr};

use crate::frames::{PhysMem, PhysMemError};

/// Per-level virtual-address shift: PML4, PDPT, PD, PT.
pub const LEVEL_SHIFTS: [u32; 4] = [39, 30, 21, 12];

/// A completed virtual→physical mapping for one page.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Translation {
    /// Base virtual address of the page.
    pub vbase: VAddr,
    /// Base physical address of the backing frame.
    pub pbase: PAddr,
    /// The page size — the metadata PPM propagates.
    pub size: PageSize,
}

psa_common::persist_struct!(Translation { vbase, pbase, size });

impl Translation {
    /// Translate an arbitrary virtual address covered by this mapping.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `vaddr` lies outside the mapped page.
    #[inline]
    pub fn apply(&self, vaddr: VAddr) -> PAddr {
        debug_assert_eq!(vaddr.page_base(self.size), self.vbase);
        PAddr::new(self.pbase.raw() + vaddr.page_offset(self.size))
    }
}

/// Errors installing a mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The virtual range is already mapped (possibly at another size).
    AlreadyMapped {
        /// Base virtual address of the conflicting request.
        vbase: VAddr,
    },
    /// The base address is not aligned to the requested page size.
    Misaligned {
        /// The unaligned base address.
        vbase: VAddr,
        /// The requested page size.
        size: PageSize,
    },
    /// Could not allocate a frame for an interior page-table node.
    Phys(PhysMemError),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::AlreadyMapped { vbase } => write!(f, "virtual page {vbase} already mapped"),
            MapError::Misaligned { vbase, size } => {
                write!(f, "virtual base {vbase} not aligned to {size}")
            }
            MapError::Phys(e) => write!(f, "page-table node allocation failed: {e}"),
        }
    }
}

impl std::error::Error for MapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MapError::Phys(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PhysMemError> for MapError {
    fn from(e: PhysMemError) -> Self {
        MapError::Phys(e)
    }
}

#[derive(Debug, Clone, Copy)]
enum Entry {
    Table(u32),
    Leaf { pbase: PAddr, size: PageSize },
}

impl Default for Entry {
    fn default() -> Self {
        Entry::Table(0)
    }
}

impl psa_common::Persist for Entry {
    fn save(&self, e: &mut psa_common::Enc) {
        match self {
            Entry::Table(next) => {
                e.put_u8(0);
                e.put_u32(*next);
            }
            Entry::Leaf { pbase, size } => {
                e.put_u8(1);
                pbase.save(e);
                size.save(e);
            }
        }
    }
    fn load(&mut self, d: &mut psa_common::Dec) -> Result<(), psa_common::CodecError> {
        *self = match d.get_u8()? {
            0 => Entry::Table(d.get_u32()?),
            1 => {
                let mut pbase = PAddr::default();
                pbase.load(d)?;
                let mut size = PageSize::default();
                size.load(d)?;
                Entry::Leaf { pbase, size }
            }
            _ => return Err(psa_common::CodecError::Corrupt("page-table entry tag")),
        };
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Node {
    /// Physical frame holding this 512-entry table node.
    frame: PAddr,
    entries: psa_common::fxhash::FxHashMap<u16, Entry>,
}

psa_common::persist_struct!(Node { frame, entries });

/// One step of a page walk: the physical line of the PTE that was read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Radix level, 0 = PML4 … 3 = PT.
    pub level: u8,
    /// Physical cache line holding the entry.
    pub pte_line: PLine,
}

/// The result of walking the table for one virtual address.
#[derive(Debug, Clone)]
pub struct Walk {
    /// PTE lines read, outermost first.
    pub steps: Vec<WalkStep>,
    /// The mapping found, if any.
    pub translation: Option<Translation>,
}

/// The radix page table of one address space.
///
/// The `Default` value is an *empty* table (no root node) and exists only as
/// a load target for the checkpoint codec; [`PageTable::new`] is the real
/// constructor.
#[derive(Debug, Default)]
pub struct PageTable {
    nodes: Vec<Node>,
    mapped_pages: u64,
}

psa_common::persist_struct!(PageTable {
    nodes,
    mapped_pages,
});

impl PageTable {
    /// Create an empty table, allocating the root (PML4) node's frame.
    ///
    /// # Errors
    ///
    /// Fails if physical memory is exhausted.
    pub fn new(phys: &mut PhysMem) -> Result<Self, PhysMemError> {
        let frame = phys.alloc(PageSize::Size4K)?;
        Ok(Self {
            nodes: vec![Node {
                frame,
                entries: psa_common::fxhash::FxHashMap::default(),
            }],
            mapped_pages: 0,
        })
    }

    fn index(vaddr: VAddr, level: usize) -> u16 {
        ((vaddr.raw() >> LEVEL_SHIFTS[level]) & 0x1ff) as u16
    }

    fn pte_line(&self, node: u32, idx: u16) -> PLine {
        PAddr::new(self.nodes[node as usize].frame.raw() + u64::from(idx) * 8).line()
    }

    /// Install a mapping for the page of `size` based at `vbase`.
    ///
    /// # Errors
    ///
    /// * [`MapError::Misaligned`] if `vbase`/`pbase` are not `size`-aligned.
    /// * [`MapError::AlreadyMapped`] if any part of the range is mapped.
    /// * [`MapError::Phys`] if an interior node frame cannot be allocated.
    pub fn map(
        &mut self,
        phys: &mut PhysMem,
        vbase: VAddr,
        pbase: PAddr,
        size: PageSize,
    ) -> Result<(), MapError> {
        if vbase.page_offset(size) != 0 || pbase.page_offset(size) != 0 {
            return Err(MapError::Misaligned { vbase, size });
        }
        let leaf_level = match size {
            PageSize::Size2M => 2,
            PageSize::Size4K => 3,
        };
        let mut node = 0u32;
        for level in 0..leaf_level {
            let idx = Self::index(vbase, level);
            match self.nodes[node as usize].entries.get(&idx) {
                Some(Entry::Table(next)) => node = *next,
                Some(Entry::Leaf { .. }) => return Err(MapError::AlreadyMapped { vbase }),
                None => {
                    let frame = phys.alloc(PageSize::Size4K)?;
                    let next = self.nodes.len() as u32;
                    self.nodes.push(Node {
                        frame,
                        entries: psa_common::fxhash::FxHashMap::default(),
                    });
                    self.nodes[node as usize]
                        .entries
                        .insert(idx, Entry::Table(next));
                    node = next;
                }
            }
        }
        let idx = Self::index(vbase, leaf_level);
        let slot = &mut self.nodes[node as usize].entries;
        if slot.contains_key(&idx) {
            return Err(MapError::AlreadyMapped { vbase });
        }
        slot.insert(idx, Entry::Leaf { pbase, size });
        self.mapped_pages += 1;
        Ok(())
    }

    /// Look up `vaddr` without recording walk steps.
    pub fn translate(&self, vaddr: VAddr) -> Option<Translation> {
        self.walk_from(vaddr, 0, 0).translation
    }

    /// Walk the table for `vaddr` starting below `skip_levels` already
    /// resolved by MMU caches (0 = full walk from PML4). `start_node` is the
    /// node the skipped prefix resolved to.
    pub(crate) fn walk_from(&self, vaddr: VAddr, skip_levels: u8, start_node: u32) -> Walk {
        let mut steps = Vec::with_capacity(4);
        let mut node = start_node;
        for level in usize::from(skip_levels)..4 {
            let idx = Self::index(vaddr, level);
            steps.push(WalkStep {
                level: level as u8,
                pte_line: self.pte_line(node, idx),
            });
            match self.nodes[node as usize].entries.get(&idx) {
                Some(Entry::Table(next)) => node = *next,
                Some(Entry::Leaf { pbase, size }) => {
                    return Walk {
                        steps,
                        translation: Some(Translation {
                            vbase: vaddr.page_base(*size),
                            pbase: *pbase,
                            size: *size,
                        }),
                    };
                }
                None => {
                    return Walk {
                        steps,
                        translation: None,
                    }
                }
            }
        }
        Walk {
            steps,
            translation: None,
        }
    }

    /// Resolve the node reached after walking `levels` levels for `vaddr`,
    /// if that prefix is fully present. Used by MMU-cache fills.
    pub(crate) fn node_at(&self, vaddr: VAddr, levels: u8) -> Option<u32> {
        let mut node = 0u32;
        for level in 0..usize::from(levels) {
            match self.nodes[node as usize]
                .entries
                .get(&Self::index(vaddr, level))
            {
                Some(Entry::Table(next)) => node = *next,
                _ => return None,
            }
        }
        Some(node)
    }

    /// Number of leaf mappings installed.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Number of interior nodes (≥1; the PML4 always exists).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::PhysMemConfig;

    fn setup() -> (PhysMem, PageTable) {
        let mut phys = PhysMem::new(
            PhysMemConfig {
                bytes: 256 * 1024 * 1024,
            },
            7,
        )
        .unwrap();
        let pt = PageTable::new(&mut phys).unwrap();
        (phys, pt)
    }

    #[test]
    fn map_and_translate_4k() {
        let (mut phys, mut pt) = setup();
        let pbase = phys.alloc(PageSize::Size4K).unwrap();
        pt.map(&mut phys, VAddr::new(0x1000), pbase, PageSize::Size4K)
            .unwrap();
        let t = pt.translate(VAddr::new(0x1abc)).unwrap();
        assert_eq!(t.size, PageSize::Size4K);
        assert_eq!(t.apply(VAddr::new(0x1abc)).raw(), pbase.raw() + 0xabc);
        assert!(pt.translate(VAddr::new(0x2000)).is_none());
    }

    #[test]
    fn map_and_translate_2m() {
        let (mut phys, mut pt) = setup();
        let pbase = phys.alloc(PageSize::Size2M).unwrap();
        pt.map(&mut phys, VAddr::new(0x4000_0000), pbase, PageSize::Size2M)
            .unwrap();
        let t = pt.translate(VAddr::new(0x4012_3456)).unwrap();
        assert_eq!(t.size, PageSize::Size2M);
        assert_eq!(
            t.apply(VAddr::new(0x4012_3456)).raw(),
            pbase.raw() + 0x12_3456
        );
    }

    #[test]
    fn walk_depth_matches_page_size() {
        // 4KB walk: 4 levels; 2MB walk: 3 levels — the TLB-miss saving the
        // paper cites for large pages.
        let (mut phys, mut pt) = setup();
        let p4 = phys.alloc(PageSize::Size4K).unwrap();
        let p2 = phys.alloc(PageSize::Size2M).unwrap();
        pt.map(&mut phys, VAddr::new(0x1000), p4, PageSize::Size4K)
            .unwrap();
        pt.map(&mut phys, VAddr::new(0x4000_0000), p2, PageSize::Size2M)
            .unwrap();
        assert_eq!(pt.walk_from(VAddr::new(0x1000), 0, 0).steps.len(), 4);
        assert_eq!(pt.walk_from(VAddr::new(0x4000_0000), 0, 0).steps.len(), 3);
    }

    #[test]
    fn rejects_double_map_and_misalignment() {
        let (mut phys, mut pt) = setup();
        let p = phys.alloc(PageSize::Size4K).unwrap();
        pt.map(&mut phys, VAddr::new(0x1000), p, PageSize::Size4K)
            .unwrap();
        assert!(matches!(
            pt.map(&mut phys, VAddr::new(0x1000), p, PageSize::Size4K),
            Err(MapError::AlreadyMapped { .. })
        ));
        assert!(matches!(
            pt.map(&mut phys, VAddr::new(0x1234), p, PageSize::Size4K),
            Err(MapError::Misaligned { .. })
        ));
    }

    #[test]
    fn walk_steps_live_in_distinct_frames_per_level() {
        let (mut phys, mut pt) = setup();
        let p = phys.alloc(PageSize::Size4K).unwrap();
        pt.map(&mut phys, VAddr::new(0x7fff_1234_5000), p, PageSize::Size4K)
            .unwrap();
        let walk = pt.walk_from(VAddr::new(0x7fff_1234_5000), 0, 0);
        let frames: std::collections::HashSet<u64> = walk
            .steps
            .iter()
            .map(|s| s.pte_line.addr().page_number(PageSize::Size4K))
            .collect();
        assert_eq!(frames.len(), 4, "each level sits in its own node frame");
    }

    #[test]
    fn partial_walk_skips_levels() {
        let (mut phys, mut pt) = setup();
        let p = phys.alloc(PageSize::Size4K).unwrap();
        let v = VAddr::new(0x5555_5555_5000 & !0xfff);
        pt.map(&mut phys, v, p, PageSize::Size4K).unwrap();
        let node = pt.node_at(v, 2).unwrap();
        let walk = pt.walk_from(v, 2, node);
        assert_eq!(walk.steps.len(), 2);
        assert_eq!(walk.translation.unwrap().pbase, p);
    }

    #[test]
    fn sibling_4k_pages_share_interior_nodes() {
        let (mut phys, mut pt) = setup();
        let before = pt.node_count();
        for i in 0..8 {
            let p = phys.alloc(PageSize::Size4K).unwrap();
            pt.map(&mut phys, VAddr::new(0x1000 * (i + 1)), p, PageSize::Size4K)
                .unwrap();
        }
        // One PML4→PDPT→PD→PT chain: 3 new nodes for 8 sibling pages.
        assert_eq!(pt.node_count(), before + 3);
        assert_eq!(pt.mapped_pages(), 8);
    }
}
