//! Property tests for the virtual-memory substrate: translation safety,
//! page-walk consistency and frame disjointness.

use proptest::prelude::*;
use psa_common::{PageSize, VAddr};
use psa_vmem::{AddressSpace, AspaceConfig, Mmu, MmuConfig, PhysMem, PhysMemConfig};

fn phys() -> PhysMem {
    PhysMem::new(PhysMemConfig { bytes: 1 << 30 }, 11).expect("shape")
}

proptest! {
    /// Translation is a function: the same virtual address always maps to
    /// the same physical address, for any access order.
    #[test]
    fn translation_is_stable(addrs in proptest::collection::vec(0u64..(1u64 << 33), 1..200), huge in 0.0f64..1.0) {
        let mut pm = phys();
        let mut aspace = AddressSpace::new(AspaceConfig { huge_fraction: huge, seed: 3 });
        let mut first = std::collections::HashMap::new();
        for &a in addrs.iter().chain(addrs.iter()) {
            let v = VAddr::new(a);
            let t = aspace.translate_or_map(&mut pm, v).expect("memory fits");
            let p = t.apply(v).raw();
            if let Some(&prev) = first.get(&a) {
                prop_assert_eq!(p, prev, "translation changed for {:#x}", a);
            } else {
                first.insert(a, p);
            }
        }
    }

    /// Two distinct virtual pages never share physical bytes — mappings
    /// are injective (no aliasing), at any THP mix.
    #[test]
    fn mappings_never_alias(pages in proptest::collection::hash_set(0u64..100_000, 1..150), huge in 0.0f64..1.0) {
        let mut pm = phys();
        let mut aspace = AddressSpace::new(AspaceConfig { huge_fraction: huge, seed: 7 });
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &page in &pages {
            let v = VAddr::new(page * 4096);
            let t = aspace.translate_or_map(&mut pm, v).expect("memory fits");
            if seen.insert((t.pbase.raw(), t.size)) {
                spans.push((t.pbase.raw(), t.pbase.raw() + t.size.bytes()));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "physical overlap {:?} vs {:?}", w[0], w[1]);
        }
    }

    /// The MMU agrees with the raw address space, and its page-size
    /// metadata (the PPM payload) matches the installed mapping.
    #[test]
    fn mmu_translation_matches_page_table(addrs in proptest::collection::vec(0u64..(1u64 << 32), 1..100)) {
        let mut pm = phys();
        let mut aspace = AddressSpace::new(AspaceConfig { huge_fraction: 0.5, seed: 13 });
        let mut mmu = Mmu::new(MmuConfig::default()).expect("shape");
        for &a in &addrs {
            let v = VAddr::new(a);
            let out = mmu.translate(&mut aspace, &mut pm, v).expect("memory fits");
            let reference = aspace.translate_or_map(&mut pm, v).expect("mapped");
            prop_assert_eq!(out.paddr, reference.apply(v));
            prop_assert_eq!(out.size, reference.size);
            // Offsets survive translation within the page.
            prop_assert_eq!(
                out.paddr.page_offset(out.size),
                v.page_offset(out.size)
            );
        }
    }

    /// Page walks are bounded by the radix depth and shrink for 2MB pages.
    #[test]
    fn walk_length_bounded(addrs in proptest::collection::vec(0u64..(1u64 << 34), 1..80)) {
        let mut pm = phys();
        let mut aspace = AddressSpace::new(AspaceConfig { huge_fraction: 0.5, seed: 17 });
        let mut mmu = Mmu::new(MmuConfig::default()).expect("shape");
        for &a in &addrs {
            let out = mmu.translate(&mut aspace, &mut pm, VAddr::new(a)).expect("memory fits");
            let max = match out.size {
                PageSize::Size4K => 4,
                PageSize::Size2M => 3,
            };
            prop_assert!(out.walk_lines.len() <= max, "walk of {} steps", out.walk_lines.len());
        }
    }
}
