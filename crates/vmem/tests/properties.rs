//! Randomized property tests for the virtual-memory substrate: translation
//! safety, page-walk consistency and frame disjointness. Driven by the
//! workspace's deterministic [`DetRng`] (no external framework).

use psa_common::{DetRng, PageSize, VAddr};
use psa_vmem::{AddressSpace, AspaceConfig, Mmu, MmuConfig, PhysMem, PhysMemConfig};

fn phys() -> PhysMem {
    PhysMem::new(PhysMemConfig { bytes: 1 << 30 }, 11).expect("shape")
}

/// Translation is a function: the same virtual address always maps to
/// the same physical address, for any access order.
#[test]
fn translation_is_stable() {
    let mut rng = DetRng::new(0x7A51);
    for _ in 0..16 {
        let huge = rng.unit();
        let addrs: Vec<u64> = (0..1 + rng.index(199))
            .map(|_| rng.below(1 << 33))
            .collect();
        let mut pm = phys();
        let mut aspace = AddressSpace::new(AspaceConfig {
            huge_fraction: huge,
            seed: 3,
        });
        let mut first = std::collections::HashMap::new();
        for &a in addrs.iter().chain(addrs.iter()) {
            let v = VAddr::new(a);
            let t = aspace.translate_or_map(&mut pm, v).expect("memory fits");
            let p = t.apply(v).raw();
            if let Some(&prev) = first.get(&a) {
                assert_eq!(p, prev, "translation changed for {a:#x}");
            } else {
                first.insert(a, p);
            }
        }
    }
}

/// Two distinct virtual pages never share physical bytes — mappings
/// are injective (no aliasing), at any THP mix.
#[test]
fn mappings_never_alias() {
    let mut rng = DetRng::new(0xA11A5);
    for _ in 0..16 {
        let huge = rng.unit();
        let pages: std::collections::HashSet<u64> = (0..1 + rng.index(149))
            .map(|_| rng.below(100_000))
            .collect();
        let mut pm = phys();
        let mut aspace = AddressSpace::new(AspaceConfig {
            huge_fraction: huge,
            seed: 7,
        });
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &page in &pages {
            let v = VAddr::new(page * 4096);
            let t = aspace.translate_or_map(&mut pm, v).expect("memory fits");
            if seen.insert((t.pbase.raw(), t.size)) {
                spans.push((t.pbase.raw(), t.pbase.raw() + t.size.bytes()));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "physical overlap {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }
}

/// The MMU agrees with the raw address space, and its page-size
/// metadata (the PPM payload) matches the installed mapping.
#[test]
fn mmu_translation_matches_page_table() {
    let mut rng = DetRng::new(0x3313);
    for _ in 0..16 {
        let mut pm = phys();
        let mut aspace = AddressSpace::new(AspaceConfig {
            huge_fraction: 0.5,
            seed: 13,
        });
        let mut mmu = Mmu::new(MmuConfig::default()).expect("shape");
        for _ in 0..1 + rng.index(99) {
            let v = VAddr::new(rng.below(1 << 32));
            let out = mmu.translate(&mut aspace, &mut pm, v).expect("memory fits");
            let reference = aspace.translate_or_map(&mut pm, v).expect("mapped");
            assert_eq!(out.paddr, reference.apply(v));
            assert_eq!(out.size, reference.size);
            // Offsets survive translation within the page.
            assert_eq!(out.paddr.page_offset(out.size), v.page_offset(out.size));
        }
    }
}

/// Page walks are bounded by the radix depth and shrink for 2MB pages.
#[test]
fn walk_length_bounded() {
    let mut rng = DetRng::new(0x111A);
    for _ in 0..16 {
        let mut pm = phys();
        let mut aspace = AddressSpace::new(AspaceConfig {
            huge_fraction: 0.5,
            seed: 17,
        });
        let mut mmu = Mmu::new(MmuConfig::default()).expect("shape");
        for _ in 0..1 + rng.index(79) {
            let out = mmu
                .translate(&mut aspace, &mut pm, VAddr::new(rng.below(1 << 34)))
                .expect("memory fits");
            let max = match out.size {
                PageSize::Size4K => 4,
                PageSize::Size2M => 3,
            };
            assert!(
                out.walk_lines.len() <= max,
                "walk of {} steps",
                out.walk_lines.len()
            );
        }
    }
}
