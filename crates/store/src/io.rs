//! The IO boundary of the store.
//!
//! Everything the store does to the filesystem goes through the
//! [`StoreIo`] trait, for two reasons:
//!
//! * **fault injection** — [`crate::fault::FaultIo`] wraps any
//!   `StoreIo` and injects torn writes, bit flips, `ENOSPC` and
//!   transient `EIO` at deterministic operation indices, which is how
//!   the crash-recovery property tests drive the store through every
//!   failure point;
//! * **durability policy in one place** — [`RealIo`] is the only code
//!   that opens files, and it owns the fsync discipline (data files and
//!   their parent directory are synced before an operation reports
//!   success), so the crash-safety argument does not depend on call
//!   sites remembering to sync.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Filesystem operations used by the store.
///
/// Every method is one *operation* from the fault plan's point of view;
/// [`crate::fault::FaultIo`] counts calls and decides per-call whether
/// to inject a fault. Methods take `&mut self` so implementations can
/// keep cursors or RNG state without interior mutability.
pub trait StoreIo: Send {
    /// Read a whole file into memory.
    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>>;

    /// Read `len` bytes starting at `offset`. Short reads are errors.
    fn read_range(&mut self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>>;

    /// Batched ranged read: one open, all `ranges` served from it.
    ///
    /// This is the scatter/gather entry point recovery uses to verify
    /// every frame header of a segment in a single pass instead of one
    /// open-seek-read per entry.
    fn read_many(&mut self, path: &Path, ranges: &[(u64, usize)]) -> io::Result<Vec<Vec<u8>>>;

    /// Append `bytes` to `path` (creating it if absent), sync the file,
    /// and return the offset at which the write started.
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<u64>;

    /// Create/truncate `path`, write `bytes`, and sync the file.
    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` to `to`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file; missing files are not an error.
    fn remove(&mut self, path: &Path) -> io::Result<()>;

    /// List the entries of `dir` (files only, full paths).
    fn list(&mut self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Length of the file at `path` in bytes.
    fn file_len(&mut self, path: &Path) -> io::Result<u64>;

    /// Sync a directory so renames/creates within it are durable.
    fn sync_dir(&mut self, dir: &Path) -> io::Result<()>;

    /// Create `dir` and any missing parents.
    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()>;
}

/// Whether an IO error is worth retrying.
///
/// Transient faults (`EIO`, interrupted/timed-out syscalls) may succeed
/// on a later attempt; everything else — notably `ENOSPC` — is treated
/// as permanent and makes the store degrade instead of spin.
pub fn is_transient(e: &io::Error) -> bool {
    if matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::TimedOut
    ) {
        return true;
    }
    // EIO has no stable `ErrorKind`; match the raw errno (5 on Linux).
    e.raw_os_error() == Some(5)
}

/// True if the error is "out of space" (`ENOSPC`, errno 28).
pub fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28) || matches!(e.kind(), io::ErrorKind::StorageFull)
}

/// The production [`StoreIo`]: real files, strict durability.
#[derive(Debug, Default)]
pub struct RealIo;

impl RealIo {
    /// A fresh instance (stateless; exists for symmetry with `FaultIo`).
    pub fn new() -> Self {
        Self
    }
}

fn read_exact_at(f: &mut File, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    f.read_exact(&mut buf)?;
    Ok(buf)
}

impl StoreIo for RealIo {
    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut f = File::open(path)?;
        read_exact_at(&mut f, offset, len)
    }

    fn read_many(&mut self, path: &Path, ranges: &[(u64, usize)]) -> io::Result<Vec<Vec<u8>>> {
        let mut f = File::open(path)?;
        let mut out = Vec::with_capacity(ranges.len());
        for &(offset, len) in ranges {
            out.push(read_exact_at(&mut f, offset, len)?);
        }
        Ok(out)
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<u64> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        let offset = f.seek(SeekFrom::End(0))?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(offset)
    }

    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }

    fn list(&mut self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn file_len(&mut self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        // Directory fsync is how the rename in an atomic swap becomes
        // durable. Platforms that cannot open a directory read-only for
        // syncing simply skip it.
        match File::open(dir) {
            Ok(f) => f.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }
}
