//! Concurrency wrappers for serving one [`Store`] to many threads.
//!
//! The store itself is single-owner (`&mut self` everywhere) because
//! its disk tier mutates a manifest; a server wants one durable
//! instance shared across worker and connection threads. Two pieces:
//!
//! * [`SharedStore`] — a clone-able `Arc<Mutex<Store>>` handle whose
//!   `get`/`put` take `&self`. All callers funnel through one mutex;
//!   payloads are `Arc<Vec<u8>>` so the lock is held only for the
//!   lookup, never while a caller consumes bytes.
//! * [`InFlight`] — a keyed single-flight registry: the first caller
//!   for a key becomes the *leader* and computes the value, every
//!   concurrent or later caller for the same key *joins* the finished
//!   (or registered) entry instead of recomputing. This is the
//!   server-side dedup layer: N identical job submissions cost one
//!   simulation.

use crate::{EntryKind, Store, StoreError, Tier};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A clone-able, thread-safe handle to one [`Store`].
#[derive(Clone)]
pub struct SharedStore {
    inner: Arc<Mutex<Store>>,
}

impl SharedStore {
    /// Wrap an opened store in a shareable handle.
    pub fn new(store: Store) -> Self {
        SharedStore {
            inner: Arc::new(Mutex::new(store)),
        }
    }

    /// Thread-safe [`Store::get`].
    pub fn get(&self, kind: EntryKind, key: u64) -> Option<(Arc<Vec<u8>>, Tier)> {
        self.lock().get(kind, key)
    }

    /// Thread-safe [`Store::put`].
    pub fn put(&self, kind: EntryKind, key: u64, payload: Arc<Vec<u8>>) -> Result<(), StoreError> {
        self.lock().put(kind, key, payload)
    }

    /// Run `f` with the locked store (for multi-call sequences that
    /// must observe one consistent state).
    pub fn with<R>(&self, f: impl FnOnce(&mut Store) -> R) -> R {
        f(&mut self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Store> {
        // A poisoned store mutex means a panic mid-put; the store's
        // own contract (right bytes or nothing) still holds, so keep
        // serving rather than wedging every caller.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Outcome of [`InFlight::try_enter`].
#[derive(Debug)]
pub enum Entered<V> {
    /// This caller registered the key; it owns producing the result.
    Led(V),
    /// The key was already registered; the existing value is returned.
    Joined(V),
}

impl<V> Entered<V> {
    /// The carried value, leader or not.
    pub fn value(self) -> V {
        match self {
            Entered::Led(v) | Entered::Joined(v) => v,
        }
    }

    /// Whether this caller is the leader for the key.
    pub fn led(&self) -> bool {
        matches!(self, Entered::Led(_))
    }
}

/// Keyed single-flight registry: one leader per key, everyone else
/// joins the leader's entry.
///
/// `try_enter` runs the caller's constructor *under the registry
/// lock*, so checking capacity, enqueueing work and registering the
/// key are one atomic step — a concurrent duplicate can never slip
/// between "not registered yet" and "registered". Entries stay until
/// [`InFlight::remove`], so finished keys keep dedup-serving joiners.
pub struct InFlight<K, V> {
    map: Mutex<HashMap<K, V>>,
    leaders: AtomicU64,
    joined: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> InFlight<K, V> {
    /// Empty registry.
    pub fn new() -> Self {
        InFlight {
            map: Mutex::new(HashMap::new()),
            leaders: AtomicU64::new(0),
            joined: AtomicU64::new(0),
        }
    }

    /// Join `key`'s existing entry, or lead by registering the value
    /// produced by `make`. `make` runs at most once per registration
    /// and only when no entry exists; if it errors, nothing is
    /// registered and the error is returned to this caller alone.
    pub fn try_enter<E>(
        &self,
        key: K,
        make: impl FnOnce() -> Result<V, E>,
    ) -> Result<Entered<V>, E> {
        let mut map = self.lock();
        if let Some(v) = map.get(&key) {
            self.joined.fetch_add(1, Ordering::Relaxed);
            return Ok(Entered::Joined(v.clone()));
        }
        let v = make()?;
        map.insert(key, v.clone());
        self.leaders.fetch_add(1, Ordering::Relaxed);
        Ok(Entered::Led(v))
    }

    /// Current value for `key`, if registered.
    pub fn get(&self, key: &K) -> Option<V> {
        self.lock().get(key).cloned()
    }

    /// Drop `key`'s entry (e.g. a failed job, so a retry can lead).
    pub fn remove(&self, key: &K) -> Option<V> {
        self.lock().remove(key)
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no entries are registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Callers that registered a new entry.
    pub fn leaders(&self) -> u64 {
        self.leaders.load(Ordering::Relaxed)
    }

    /// Callers served an existing entry.
    pub fn joined(&self) -> u64 {
        self.joined.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<K, V>> {
        match self.map.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for InFlight<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreConfig;
    use std::sync::Barrier;

    #[test]
    fn shared_store_round_trips_across_threads() {
        let dir = std::env::temp_dir().join(format!("psa-sync-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shared = SharedStore::new(Store::open(StoreConfig::new(&dir)));
        let threads = 8;
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            for t in 0..threads {
                let shared = shared.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let key = t as u64;
                    let payload = Arc::new(vec![t as u8; 64]);
                    shared
                        .put(EntryKind::Document, key, Arc::clone(&payload))
                        .expect("put");
                    let (got, _) = shared.get(EntryKind::Document, key).expect("get");
                    assert_eq!(*got, *payload);
                });
            }
        });
        assert_eq!(shared.with(|s| s.mem_entries()), threads);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_flight_has_exactly_one_leader_per_key() {
        let reg: InFlight<u64, usize> = InFlight::new();
        let threads = 16;
        let barrier = Barrier::new(threads);
        let led = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let (reg, barrier, led) = (&reg, &barrier, &led);
                s.spawn(move || {
                    barrier.wait();
                    let entered = reg
                        .try_enter(42, || Ok::<_, ()>(t))
                        .expect("infallible make");
                    if entered.led() {
                        led.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(led.load(Ordering::Relaxed), 1);
        assert_eq!(reg.leaders(), 1);
        assert_eq!(reg.joined(), threads as u64 - 1);
        assert_eq!(reg.len(), 1);
        // Everyone joined the single registered value.
        let v = reg.get(&42).expect("registered");
        assert!(v < threads);
    }

    #[test]
    fn in_flight_failed_make_registers_nothing() {
        let reg: InFlight<u64, usize> = InFlight::new();
        let err = reg.try_enter(7, || Err::<usize, _>("nope"));
        assert_eq!(err.unwrap_err(), "nope");
        assert!(reg.is_empty());
        // A later caller can still lead.
        let entered = reg.try_enter(7, || Ok::<_, ()>(9)).expect("ok");
        assert!(entered.led());
        assert_eq!(entered.value(), 9);
    }

    #[test]
    fn in_flight_remove_allows_retry_leadership() {
        let reg: InFlight<&'static str, u32> = InFlight::new();
        assert!(reg.try_enter("k", || Ok::<_, ()>(1)).unwrap().led());
        assert_eq!(reg.remove(&"k"), Some(1));
        assert!(reg.try_enter("k", || Ok::<_, ()>(2)).unwrap().led());
        assert_eq!(reg.get(&"k"), Some(2));
    }
}
