//! On-disk formats of the store: segment frames and the manifest.
//!
//! A **segment** (`seg-<id>.psg`) is an append-only file of frames;
//! each frame is a small checksummed header followed by the payload.
//! Frames are never located by scanning — the **manifest** (`MANIFEST`)
//! is the single source of truth mapping `(kind, key)` to
//! `(segment, offset, length, checksum)`. The manifest is replaced
//! atomically (tmp file + fsync + rename + directory fsync) *after*
//! the frames it references are durable, so at every crash point the
//! on-disk manifest references only complete frames:
//!
//! * crash mid-append → garbage at a segment tail that no manifest
//!   entry references; ignored, reclaimed by compaction;
//! * crash mid-manifest-write → a `MANIFEST.tmp` leftover next to an
//!   intact old `MANIFEST`; the tmp is deleted at recovery;
//! * bit rot anywhere → the frame (or manifest) checksum fails and the
//!   entry is quarantined, never decoded.

use psa_common::codec::{CodecError, Dec, Enc};
use psa_common::rng::fnv1a;
use std::collections::HashMap;

/// Magic prefix of every frame header.
pub const FRAME_MAGIC: [u8; 4] = *b"PSPG";
/// Encoded size of a frame header.
pub const FRAME_HEADER_LEN: usize = 4 + 1 + 8 + 8 + 8;

/// Magic prefix of the manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"PSAMAN\x00\x01";
/// Version written into (and required of) the manifest.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the current manifest within the store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// File name the next manifest is staged under before the atomic rename.
pub const MANIFEST_TMP_NAME: &str = "MANIFEST.tmp";

/// Name of segment `id` within the store directory.
pub fn seg_file_name(id: u32) -> String {
    format!("seg-{id:08x}.psg")
}

/// Inverse of [`seg_file_name`]; `None` for foreign files (the store
/// shares its directory with legacy flat `.ckpt` files and must never
/// touch anything it does not own).
pub fn parse_seg_file_name(name: &str) -> Option<u32> {
    let id = name.strip_prefix("seg-")?.strip_suffix(".psg")?;
    if id.len() != 8 {
        return None;
    }
    u32::from_str_radix(id, 16).ok()
}

/// One manifest entry: where a payload lives and how to verify it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Entry-kind tag (see `EntryKind`).
    pub kind: u8,
    /// Content key.
    pub key: u64,
    /// Segment id holding the frame.
    pub seg: u32,
    /// Byte offset of the frame header within the segment.
    pub offset: u64,
    /// Payload length in bytes (excludes the frame header).
    pub len: u64,
    /// `fnv1a` of the payload.
    pub checksum: u64,
    /// LRU stamp; larger = more recently used.
    pub stamp: u64,
}

impl Entry {
    /// Total frame size on disk (header + payload).
    pub fn frame_len(&self) -> u64 {
        FRAME_HEADER_LEN as u64 + self.len
    }
}

/// Decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Entry-kind tag.
    pub kind: u8,
    /// Content key.
    pub key: u64,
    /// Payload length.
    pub len: u64,
    /// `fnv1a` of the payload.
    pub checksum: u64,
}

/// Encode a frame (header + payload) ready to append to a segment.
pub fn encode_frame(kind: u8, key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse and validate the fixed-size frame header at the start of
/// `bytes`.
pub fn parse_frame_header(bytes: &[u8]) -> Result<FrameHeader, CodecError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(CodecError::Eof);
    }
    if bytes[..4] != FRAME_MAGIC {
        return Err(CodecError::Corrupt("frame magic"));
    }
    let kind = bytes[4];
    let key = u64::from_le_bytes(bytes[5..13].try_into().expect("len 8"));
    let len = u64::from_le_bytes(bytes[13..21].try_into().expect("len 8"));
    let checksum = u64::from_le_bytes(bytes[21..29].try_into().expect("len 8"));
    Ok(FrameHeader {
        kind,
        key,
        len,
        checksum,
    })
}

/// The in-memory manifest: entry map plus allocation state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Monotonic swap counter (diagnostic; also salts tmp staging).
    pub generation: u64,
    /// Next segment id to allocate.
    pub next_seg_id: u32,
    /// LRU clock high-water mark.
    pub clock: u64,
    /// Live entries by `(kind, key)`.
    pub entries: HashMap<(u8, u64), Entry>,
}

impl Manifest {
    /// Serialize deterministically (entries sorted by key) with a
    /// whole-file checksum trailer.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_bytes(&MANIFEST_MAGIC);
        e.put_u32(MANIFEST_VERSION);
        e.put_u64(self.generation);
        e.put_u32(self.next_seg_id);
        e.put_u64(self.clock);
        let mut keys: Vec<&(u8, u64)> = self.entries.keys().collect();
        keys.sort();
        e.put_usize(keys.len());
        for k in keys {
            let ent = &self.entries[k];
            e.put_u8(ent.kind);
            e.put_u64(ent.key);
            e.put_u32(ent.seg);
            e.put_u64(ent.offset);
            e.put_u64(ent.len);
            e.put_u64(ent.checksum);
            e.put_u64(ent.stamp);
        }
        let mut bytes = e.into_bytes();
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        bytes
    }

    /// Decode and fully validate a manifest file.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation, wrong magic/version, or checksum
    /// mismatch — the caller treats any of these as "manifest corrupt"
    /// and rebuilds an empty store.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < 8 + 8 {
            return Err(CodecError::Eof);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("len 8"));
        if fnv1a(body) != stored {
            return Err(CodecError::Corrupt("manifest checksum"));
        }
        let mut d = Dec::new(body);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = d.get_u8()?;
        }
        if magic != MANIFEST_MAGIC {
            return Err(CodecError::Corrupt("manifest magic"));
        }
        let version = d.get_u32()?;
        if version != MANIFEST_VERSION {
            return Err(CodecError::Corrupt("manifest version"));
        }
        let mut m = Manifest {
            generation: d.get_u64()?,
            next_seg_id: d.get_u32()?,
            clock: d.get_u64()?,
            entries: HashMap::new(),
        };
        let n = d.get_len()?;
        for _ in 0..n {
            let ent = Entry {
                kind: d.get_u8()?,
                key: d.get_u64()?,
                seg: d.get_u32()?,
                offset: d.get_u64()?,
                len: d.get_u64()?,
                checksum: d.get_u64()?,
                stamp: d.get_u64()?,
            };
            m.entries.insert((ent.kind, ent.key), ent);
        }
        if d.remaining() != 0 {
            return Err(CodecError::Corrupt("manifest trailing bytes"));
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest {
            generation: 7,
            next_seg_id: 3,
            clock: 99,
            entries: HashMap::new(),
        };
        for i in 0..5u64 {
            let ent = Entry {
                kind: (i % 2) as u8,
                key: i * 1000,
                seg: (i % 3) as u32,
                offset: i * 64,
                len: 32 + i,
                checksum: 0xdead_beef ^ i,
                stamp: 10 + i,
            };
            m.entries.insert((ent.kind, ent.key), ent);
        }
        m
    }

    #[test]
    fn manifest_roundtrip() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(&bytes).expect("decode");
        assert_eq!(m, back);
    }

    #[test]
    fn manifest_encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn manifest_rejects_any_bitflip() {
        let bytes = sample().encode();
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Manifest::decode(&bad).is_err(),
                "bit {bit} flipped but manifest still decoded"
            );
        }
    }

    #[test]
    fn manifest_rejects_truncation() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn frame_roundtrip() {
        let payload = b"page size aware prefetching";
        let frame = encode_frame(1, 0xabcd, payload);
        assert_eq!(frame.len(), FRAME_HEADER_LEN + payload.len());
        let h = parse_frame_header(&frame).expect("header");
        assert_eq!(h.kind, 1);
        assert_eq!(h.key, 0xabcd);
        assert_eq!(h.len, payload.len() as u64);
        assert_eq!(h.checksum, fnv1a(payload));
        assert_eq!(&frame[FRAME_HEADER_LEN..], payload);
    }

    #[test]
    fn frame_header_rejects_corruption() {
        let frame = encode_frame(0, 9, b"xyz");
        let mut bad = frame.clone();
        bad[0] ^= 0xff;
        assert!(parse_frame_header(&bad).is_err());
        assert!(parse_frame_header(&frame[..FRAME_HEADER_LEN - 1]).is_err());
    }

    #[test]
    fn seg_names_roundtrip_and_reject_foreign_files() {
        assert_eq!(seg_file_name(42), "seg-0000002a.psg");
        assert_eq!(parse_seg_file_name("seg-0000002a.psg"), Some(42));
        assert_eq!(parse_seg_file_name("psa-0011223344556677.ckpt"), None);
        assert_eq!(parse_seg_file_name("MANIFEST"), None);
        assert_eq!(parse_seg_file_name("seg-xyz.psg"), None);
    }
}
