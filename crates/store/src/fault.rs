//! Deterministic IO fault injection.
//!
//! A [`FaultPlan`] describes *which* store IO operations fail and
//! *how*: per-operation probabilities drawn from a seeded
//! [`DetRng`], plus explicit `kind@index` pins for reproducing a
//! specific failure. [`FaultIo`] wraps any [`StoreIo`] and applies the
//! plan by counting operations — the same plan over the same operation
//! sequence always injects the same faults, which is what lets CI
//! assert bit-identical results under fault load and lets the
//! crash-recovery property test walk the store through *every*
//! operation index.
//!
//! Fault kinds:
//!
//! * **torn** — a write persists only a prefix of its bytes, then the
//!   operation fails (models a crash or kernel error mid-write);
//! * **flip** — a read succeeds but one bit of the returned buffer is
//!   inverted (models media/bus corruption; the store's checksums must
//!   catch it);
//! * **enospc** — a write fails with `ENOSPC` (permanent: the store
//!   must degrade, not spin);
//! * **eio** — the operation fails with `EIO` (transient: the store's
//!   bounded retry may succeed on the next attempt, which is also the
//!   next operation index);
//! * **crash** — from the pinned index onward *every* operation fails,
//!   emulating process death for reopen-and-recover tests.

use crate::io::StoreIo;
use psa_common::obs::store as store_obs;
use psa_common::DetRng;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One category of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Partial write then failure.
    Torn,
    /// One bit of a read buffer inverted.
    Flip,
    /// Write fails with `ENOSPC`.
    Enospc,
    /// Operation fails with transient `EIO`.
    Eio,
    /// Every operation from this index on fails.
    Crash,
}

/// A seeded, declarative description of the faults to inject.
///
/// Parsed from a spec string of comma-separated clauses:
///
/// ```text
/// seed=42,torn=0.05,flip=0.05,enospc=0.02,eio=0.08,crash@117
/// ```
///
/// `seed=N` seeds the per-operation RNG; `torn=`/`flip=`/`enospc=`/
/// `eio=` set probabilities in `[0,1]` applied independently per
/// operation (a drawn kind that does not apply to the operation — e.g.
/// a torn fault on a read — injects nothing); `kind@index` pins a fault
/// to an exact zero-based operation index, taking precedence over
/// drawn faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// RNG seed for probability draws.
    pub seed: u64,
    /// Per-op probability of a torn write.
    pub p_torn: f64,
    /// Per-op probability of a read bit flip.
    pub p_flip: f64,
    /// Per-op probability of `ENOSPC` on a write.
    pub p_enospc: f64,
    /// Per-op probability of transient `EIO`.
    pub p_eio: f64,
    /// Faults pinned to exact operation indices.
    pub pinned: Vec<(u64, FaultKind)>,
    /// First operation index of a simulated crash, if any.
    pub crash_at: Option<u64>,
}

impl FaultPlan {
    /// Parse a spec string (see the type docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed
    /// clause — used verbatim by the runner's strict env parsing.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some((kind, idx)) = clause.split_once('@') {
                let idx: u64 = idx
                    .parse()
                    .map_err(|_| format!("bad op index in `{clause}`"))?;
                match kind.trim() {
                    "torn" => plan.pinned.push((idx, FaultKind::Torn)),
                    "flip" => plan.pinned.push((idx, FaultKind::Flip)),
                    "enospc" => plan.pinned.push((idx, FaultKind::Enospc)),
                    "eio" => plan.pinned.push((idx, FaultKind::Eio)),
                    "crash" => plan.crash_at = Some(idx),
                    other => return Err(format!("unknown fault kind `{other}` in `{clause}`")),
                }
            } else if let Some((key, val)) = clause.split_once('=') {
                let key = key.trim();
                let val = val.trim();
                if key == "seed" {
                    plan.seed = val.parse().map_err(|_| format!("bad seed in `{clause}`"))?;
                    continue;
                }
                let p: f64 = val
                    .parse()
                    .map_err(|_| format!("bad probability in `{clause}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability out of [0,1] in `{clause}`"));
                }
                match key {
                    "torn" => plan.p_torn = p,
                    "flip" => plan.p_flip = p,
                    "enospc" => plan.p_enospc = p,
                    "eio" => plan.p_eio = p,
                    other => return Err(format!("unknown fault key `{other}` in `{clause}`")),
                }
            } else {
                return Err(format!(
                    "expected `key=value` or `kind@index`, got `{clause}`"
                ));
            }
        }
        Ok(plan)
    }

    /// True if the plan can never inject anything.
    pub fn is_empty(&self) -> bool {
        self.p_torn == 0.0
            && self.p_flip == 0.0
            && self.p_enospc == 0.0
            && self.p_eio == 0.0
            && self.pinned.is_empty()
            && self.crash_at.is_none()
    }
}

// Injected errors must classify exactly like their real counterparts
// under `io::is_transient`/`io::is_enospc`, which check `ErrorKind`s
// that survive wrapping with a message.
fn eio(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, format!("injected EIO: {what}"))
}

fn enospc(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::StorageFull,
        format!("injected ENOSPC: {what}"),
    )
}

fn crashed() -> io::Error {
    io::Error::other("injected crash: IO is dead")
}

/// A [`StoreIo`] wrapper that injects the faults of a [`FaultPlan`].
///
/// The operation counter is shared via an `Arc` so tests can observe
/// how many operations a workload performs (the crash-point property
/// test uses this to enumerate every crash index).
pub struct FaultIo<I> {
    inner: I,
    plan: FaultPlan,
    rng: DetRng,
    ops: Arc<AtomicU64>,
    crashed: bool,
}

impl<I: StoreIo> FaultIo<I> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: I, plan: FaultPlan) -> Self {
        let rng = DetRng::new(plan.seed ^ 0x9e37_79b9_7f4a_7c15);
        Self {
            inner,
            plan,
            rng,
            ops: Arc::new(AtomicU64::new(0)),
            crashed: false,
        }
    }

    /// Handle on the shared operation counter.
    pub fn op_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.ops)
    }

    /// Decide the fault (if any) for the operation being issued, and
    /// advance the counter. `is_write`/`is_read` gate which drawn kinds
    /// apply so the RNG stream stays aligned across runs regardless of
    /// which faults fire.
    fn decide(&mut self, is_write: bool, is_read: bool) -> Option<FaultKind> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        if self.crashed || self.plan.crash_at.is_some_and(|c| op >= c) {
            self.crashed = true;
            store_obs::global()
                .injected_faults
                .fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::Crash);
        }
        // One draw per op keeps the stream aligned whether or not a
        // pinned fault overrides it.
        let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let pinned = self
            .plan
            .pinned
            .iter()
            .find(|&&(idx, _)| idx == op)
            .map(|&(_, k)| k);
        let drawn = {
            let p = &self.plan;
            let mut acc = 0.0;
            let mut hit = None;
            for (prob, kind) in [
                (p.p_torn, FaultKind::Torn),
                (p.p_flip, FaultKind::Flip),
                (p.p_enospc, FaultKind::Enospc),
                (p.p_eio, FaultKind::Eio),
            ] {
                acc += prob;
                if u < acc {
                    hit = Some(kind);
                    break;
                }
            }
            hit
        };
        let kind = pinned.or(drawn)?;
        let applies = match kind {
            FaultKind::Torn | FaultKind::Enospc => is_write,
            FaultKind::Flip => is_read,
            FaultKind::Eio => true,
            FaultKind::Crash => true,
        };
        if applies {
            store_obs::global()
                .injected_faults
                .fetch_add(1, Ordering::Relaxed);
            Some(kind)
        } else {
            None
        }
    }

    fn flip_bit(&mut self, buf: &mut [u8]) {
        if buf.is_empty() {
            return;
        }
        let bit = self.rng.below(buf.len() as u64 * 8);
        buf[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
}

impl<I: StoreIo> StoreIo for FaultIo<I> {
    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        match self.decide(false, true) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) => Err(eio("read_file")),
            Some(FaultKind::Flip) => {
                let mut buf = self.inner.read_file(path)?;
                self.flip_bit(&mut buf);
                Ok(buf)
            }
            _ => self.inner.read_file(path),
        }
    }

    fn read_range(&mut self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        match self.decide(false, true) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) => Err(eio("read_range")),
            Some(FaultKind::Flip) => {
                let mut buf = self.inner.read_range(path, offset, len)?;
                self.flip_bit(&mut buf);
                Ok(buf)
            }
            _ => self.inner.read_range(path, offset, len),
        }
    }

    fn read_many(&mut self, path: &Path, ranges: &[(u64, usize)]) -> io::Result<Vec<Vec<u8>>> {
        match self.decide(false, true) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) => Err(eio("read_many")),
            Some(FaultKind::Flip) => {
                let mut bufs = self.inner.read_many(path, ranges)?;
                if !bufs.is_empty() {
                    let victim = self.rng.below(bufs.len() as u64) as usize;
                    self.flip_bit(&mut bufs[victim]);
                }
                Ok(bufs)
            }
            _ => self.inner.read_many(path, ranges),
        }
    }

    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<u64> {
        match self.decide(true, false) {
            Some(FaultKind::Crash) => {
                // A crash tears the in-flight write before killing IO.
                let _ = self.inner.append(path, &bytes[..bytes.len() / 2]);
                Err(crashed())
            }
            Some(FaultKind::Eio) => Err(eio("append")),
            Some(FaultKind::Enospc) => Err(enospc("append")),
            Some(FaultKind::Torn) => {
                let _ = self.inner.append(path, &bytes[..bytes.len() / 2])?;
                Err(eio("torn append"))
            }
            _ => self.inner.append(path, bytes),
        }
    }

    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.decide(true, false) {
            Some(FaultKind::Crash) => {
                let _ = self.inner.write_file(path, &bytes[..bytes.len() / 2]);
                Err(crashed())
            }
            Some(FaultKind::Eio) => Err(eio("write_file")),
            Some(FaultKind::Enospc) => Err(enospc("write_file")),
            Some(FaultKind::Torn) => {
                self.inner.write_file(path, &bytes[..bytes.len() / 2])?;
                Err(eio("torn write"))
            }
            _ => self.inner.write_file(path, bytes),
        }
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        match self.decide(true, false) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) | Some(FaultKind::Torn) => Err(eio("rename")),
            Some(FaultKind::Enospc) => Err(enospc("rename")),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        match self.decide(true, false) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) | Some(FaultKind::Torn) => Err(eio("remove")),
            Some(FaultKind::Enospc) => self.inner.remove(path),
            _ => self.inner.remove(path),
        }
    }

    fn list(&mut self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.decide(false, false) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) => Err(eio("list")),
            _ => self.inner.list(dir),
        }
    }

    fn file_len(&mut self, path: &Path) -> io::Result<u64> {
        match self.decide(false, false) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) => Err(eio("file_len")),
            _ => self.inner.file_len(path),
        }
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        match self.decide(true, false) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) => Err(eio("sync_dir")),
            _ => self.inner.sync_dir(dir),
        }
    }

    fn create_dir_all(&mut self, dir: &Path) -> io::Result<()> {
        match self.decide(true, false) {
            Some(FaultKind::Crash) => Err(crashed()),
            Some(FaultKind::Eio) => Err(eio("create_dir_all")),
            _ => self.inner.create_dir_all(dir),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("seed=42,torn=0.05,flip=0.1,enospc=0.02,eio=0.08,crash@17")
            .expect("parse");
        assert_eq!(p.seed, 42);
        assert_eq!(p.p_torn, 0.05);
        assert_eq!(p.p_flip, 0.1);
        assert_eq!(p.p_enospc, 0.02);
        assert_eq!(p.p_eio, 0.08);
        assert_eq!(p.crash_at, Some(17));
    }

    #[test]
    fn parse_pinned() {
        let p = FaultPlan::parse("torn@3,flip@5,eio@9").expect("parse");
        assert_eq!(
            p.pinned,
            vec![
                (3, FaultKind::Torn),
                (5, FaultKind::Flip),
                (9, FaultKind::Eio)
            ]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("frob=0.5").is_err());
        assert!(FaultPlan::parse("torn=1.5").is_err());
        assert!(FaultPlan::parse("torn@x").is_err());
        assert!(FaultPlan::parse("hello").is_err());
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::parse("").expect("parse").is_empty());
        assert!(FaultPlan::parse("seed=9").expect("parse").is_empty());
        assert!(!FaultPlan::parse("eio@0").expect("parse").is_empty());
    }

    #[test]
    fn injected_errors_classify_like_real_ones() {
        assert!(crate::io::is_transient(&eio("x")));
        assert!(crate::io::is_enospc(&enospc("x")));
        assert!(!crate::io::is_transient(&enospc("x")));
        assert!(!crate::io::is_enospc(&eio("x")));
        assert!(!crate::io::is_transient(&crashed()));
    }
}
