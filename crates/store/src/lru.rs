//! Byte-budgeted true-LRU memory tier.
//!
//! Entries are promoted on hit (unlike the PR 3 `MemStore` this
//! replaces, which evicted in insertion order and so dropped hot
//! warm-ups under pressure). Payloads are shared `Arc`s so a hit hands
//! out the same allocation the disk tier decoded.

use std::collections::HashMap;
use std::sync::Arc;

/// Key of a memory-tier entry: (entry kind tag, content key).
pub type MemKey = (u8, u64);

/// A byte-budgeted LRU map from [`MemKey`] to shared payloads.
#[derive(Debug, Default)]
pub struct Lru {
    cap_bytes: usize,
    bytes: usize,
    clock: u64,
    entries: HashMap<MemKey, (Arc<Vec<u8>>, u64)>,
}

impl Lru {
    /// An empty cache holding at most `cap_bytes` of payload.
    pub fn new(cap_bytes: usize) -> Self {
        Self {
            cap_bytes,
            ..Self::default()
        }
    }

    /// Look up `key`, promoting it to most-recently-used on hit.
    pub fn get(&mut self, key: MemKey) -> Option<Arc<Vec<u8>>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&key).map(|(payload, stamp)| {
            *stamp = clock;
            Arc::clone(payload)
        })
    }

    /// Insert or replace `key`, then evict least-recently-used entries
    /// until the budget holds. An over-budget payload is still admitted
    /// alone (the budget bounds *steady-state* memory, and refusing it
    /// would make large warm-ups uncacheable).
    pub fn put(&mut self, key: MemKey, payload: Arc<Vec<u8>>) {
        self.clock += 1;
        if let Some((old, stamp)) = self.entries.get_mut(&key) {
            self.bytes -= old.len();
            self.bytes += payload.len();
            *old = payload;
            *stamp = self.clock;
        } else {
            self.bytes += payload.len();
            self.entries.insert(key, (payload, self.clock));
        }
        while self.bytes > self.cap_bytes && self.entries.len() > 1 {
            // O(n) min-scan: entry counts here are tens of warm-ups,
            // not thousands of pages — a linked list would be noise.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
                .expect("non-empty");
            if let Some((payload, _)) = self.entries.remove(&victim) {
                self.bytes -= payload.len();
            }
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident payload bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Drop everything (test hook; mirrors the old `clear_memory`).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hit_promotes_true_lru() {
        let mut lru = Lru::new(250);
        lru.put((0, 1), blob(100, 1));
        lru.put((0, 2), blob(100, 2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(lru.get((0, 1)).is_some());
        lru.put((0, 3), blob(100, 3));
        assert!(lru.get((0, 1)).is_some(), "hot entry must survive");
        assert!(lru.get((0, 2)).is_none(), "cold entry must be evicted");
        assert!(lru.get((0, 3)).is_some());
        assert!(lru.bytes() <= 250);
    }

    #[test]
    fn insertion_order_without_hits_evicts_oldest() {
        let mut lru = Lru::new(250);
        lru.put((0, 1), blob(100, 1));
        lru.put((0, 2), blob(100, 2));
        lru.put((0, 3), blob(100, 3));
        assert!(lru.get((0, 1)).is_none());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn replace_updates_bytes() {
        let mut lru = Lru::new(1000);
        lru.put((1, 7), blob(400, 0));
        lru.put((1, 7), blob(100, 1));
        assert_eq!(lru.bytes(), 100);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get((1, 7)).expect("hit").len(), 100);
    }

    #[test]
    fn oversized_entry_admitted_alone() {
        let mut lru = Lru::new(50);
        lru.put((0, 1), blob(40, 0));
        lru.put((0, 2), blob(500, 1));
        assert_eq!(lru.len(), 1);
        assert!(lru.get((0, 2)).is_some());
    }

    #[test]
    fn kinds_do_not_collide() {
        let mut lru = Lru::new(1000);
        lru.put((0, 9), blob(10, 0));
        lru.put((1, 9), blob(10, 1));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get((0, 9)).expect("warmup")[0], 0);
        assert_eq!(lru.get((1, 9)).expect("report")[0], 1);
    }
}
