//! Crash-safe tiered checkpoint/result store for the *Page Size Aware
//! Cache Prefetching* reproduction.
//!
//! The experiment executor re-runs large workload×variant matrices;
//! what makes that cheap is sharing warm-up snapshots and finished
//! `RunReport`s across figures, processes and machines. This crate is
//! the storage tier behind that sharing:
//!
//! * a **memory tier** — a byte-budgeted true-LRU cache ([`lru::Lru`])
//!   of decoded payloads, promoted on hit;
//! * a **disk tier** — append-only segments of checksummed frames
//!   under a versioned manifest that is swapped atomically
//!   (tmp + fsync + rename + dir fsync), with size-budgeted LRU
//!   eviction and compaction of mostly-dead segments ([`disk`]);
//! * an **IO fault boundary** — all filesystem access goes through
//!   [`io::StoreIo`], so the deterministic fault injector
//!   ([`fault::FaultIo`]) can drive the store through torn writes, bit
//!   flips, `ENOSPC`, transient `EIO` and whole-process crashes at
//!   chosen operation indices.
//!
//! The robustness contract, enforced by the crash-point property test
//! in `tests/crash_points.rs`: whatever the fault history, a `get`
//! either returns **exactly the bytes that were put** or **nothing**
//! — never wrong bits. Transient faults are retried with bounded
//! backoff; permanent ones degrade the store to memory-only operation;
//! corrupt entries are quarantined and counted through
//! [`psa_common::obs::store`].
//!
//! Design notes: the layout is the classic page-cache-over-segments
//! shape (wackdb's LRU page cache with scatter/gather reads,
//! pingora-slice's tiered cache, NexusLite's versioned-page manifest
//! batching — see the repo's SNIPPETS.md); payloads are opaque byte
//! blobs here, typically `psa_sim` snapshot or report encodings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod fault;
pub mod io;
pub mod lru;
pub mod sync;

use disk::{
    encode_frame, parse_frame_header, seg_file_name, Entry, Manifest, FRAME_HEADER_LEN,
    MANIFEST_NAME, MANIFEST_TMP_NAME,
};
use fault::{FaultIo, FaultPlan};
use io::{is_enospc, is_transient, RealIo, StoreIo};
use psa_common::obs::store as store_obs;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// What a stored payload is; tags keep the key spaces disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// A warm-machine snapshot (`psa_sim::Snapshot` bytes).
    Warmup,
    /// A finished, encoded `RunReport`.
    Report,
    /// A finished BENCH document (schema-v4 JSON bytes): the whole
    /// assembled sweep result, memoised so a repeat request is served
    /// without touching the simulator at all.
    Document,
}

impl EntryKind {
    /// Stable on-disk tag.
    pub fn tag(self) -> u8 {
        match self {
            EntryKind::Warmup => 0,
            EntryKind::Report => 1,
            EntryKind::Document => 2,
        }
    }
}

/// Which tier served a [`Store::get`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Served from the in-process memory LRU.
    Memory,
    /// Read and verified from a disk segment.
    Disk,
}

/// Why a store write (or the store as a whole) failed.
///
/// `get` never returns errors — a failed read is a miss — but `put`
/// reports what happened so callers can count and journal it. No
/// variant ever implies data corruption was *served*; failures degrade
/// to cold work, not wrong bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A transient fault persisted through every retry attempt.
    Transient {
        /// Operation description.
        what: String,
        /// Attempts made (including the first).
        attempts: u32,
    },
    /// The disk is out of space and eviction could not free enough.
    NoSpace {
        /// Operation description.
        what: String,
    },
    /// A permanent, unclassified IO failure.
    Io {
        /// Operation description.
        what: String,
    },
    /// The file does not exist (internal; used during recovery).
    NotFound,
    /// The store previously degraded to memory-only operation.
    Degraded,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Transient { what, attempts } => {
                write!(f, "transient IO failure after {attempts} attempts: {what}")
            }
            StoreError::NoSpace { what } => write!(f, "out of disk space: {what}"),
            StoreError::Io { what } => write!(f, "IO failure: {what}"),
            StoreError::NotFound => write!(f, "file not found"),
            StoreError::Degraded => write!(f, "store degraded to memory-only operation"),
        }
    }
}

impl std::error::Error for StoreError {}

/// What recovery-on-open found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Entries that validated and were kept.
    pub entries_kept: usize,
    /// Entries dropped (out of bounds, bad header, missing segment).
    pub entries_dropped: usize,
    /// Unreferenced or orphaned files deleted.
    pub files_removed: usize,
    /// Payload bytes referenced by the kept entries.
    pub recovered_bytes: u64,
    /// True if the manifest itself was unreadable and the store
    /// restarted empty.
    pub manifest_corrupt: bool,
}

/// Configuration for [`Store::open`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Directory holding the manifest and segments. Shared with legacy
    /// flat `psa-*.ckpt` files, which the store never touches.
    pub dir: PathBuf,
    /// Memory-tier budget in bytes.
    pub mem_cap_bytes: usize,
    /// Disk-tier budget in bytes (live frame bytes; eviction target).
    pub disk_cap_bytes: u64,
    /// Segment size at which appends rotate to a fresh segment.
    pub segment_cap_bytes: u64,
    /// Maximum attempts for a transiently-failing IO operation.
    pub max_attempts: u32,
    /// Deterministic fault plan (tests/CI); `None` for clean IO.
    pub fault_plan: Option<FaultPlan>,
}

impl StoreConfig {
    /// Defaults: 256 MiB memory, 2 GiB disk, 4 MiB segments, 4 attempts.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            mem_cap_bytes: 256 << 20,
            disk_cap_bytes: 2 << 30,
            segment_cap_bytes: 4 << 20,
            max_attempts: 4,
            fault_plan: None,
        }
    }
}

/// Per-segment byte accounting for eviction/compaction decisions.
#[derive(Debug, Clone, Copy, Default)]
struct SegUsage {
    /// Frame bytes still referenced by the manifest.
    live: u64,
    /// Frame bytes ever appended (live + dead); file may be larger
    /// still because torn appends leave unaccounted garbage.
    total: u64,
}

/// The tiered store. One instance per directory; callers serialize
/// access (the experiment layer keeps it behind a mutex).
pub struct Store {
    cfg: StoreConfig,
    io: Box<dyn StoreIo>,
    mem: lru::Lru,
    manifest: Manifest,
    seg_usage: HashMap<u32, SegUsage>,
    live_bytes: u64,
    open_seg: u32,
    open_seg_len: u64,
    degraded: bool,
    recovery: RecoveryReport,
}

fn obs() -> &'static store_obs::StoreObs {
    store_obs::global()
}

/// Run `f` with bounded retry on transient errors (exponential
/// backoff, 2^attempt ms). Classifies the final error.
fn retried<T>(
    io: &mut dyn StoreIo,
    max_attempts: u32,
    what: &str,
    mut f: impl FnMut(&mut dyn StoreIo) -> std::io::Result<T>,
) -> Result<T, StoreError> {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match f(io) {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempts < max_attempts.max(1) => {
                obs().retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1u64 << attempts.min(4)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreError::NotFound),
            Err(e) if is_enospc(&e) => {
                return Err(StoreError::NoSpace {
                    what: format!("{what}: {e}"),
                })
            }
            Err(e) if is_transient(&e) => {
                return Err(StoreError::Transient {
                    what: format!("{what}: {e}"),
                    attempts,
                })
            }
            Err(e) => {
                return Err(StoreError::Io {
                    what: format!("{what}: {e}"),
                })
            }
        }
    }
}

impl Store {
    /// Open (or create) the store at `cfg.dir`, running recovery.
    ///
    /// Never fails: an unreadable directory or manifest degrades to an
    /// empty (or memory-only) store, with the damage described in
    /// [`Store::recovery`] and the global obs counters.
    pub fn open(cfg: StoreConfig) -> Self {
        let io: Box<dyn StoreIo> = match &cfg.fault_plan {
            Some(plan) if !plan.is_empty() => Box::new(FaultIo::new(RealIo::new(), plan.clone())),
            _ => Box::new(RealIo::new()),
        };
        Self::open_with_io(cfg, io)
    }

    /// [`Store::open`] with caller-supplied IO (tests inject
    /// `FaultIo` directly to keep a handle on its operation counter).
    pub fn open_with_io(cfg: StoreConfig, mut io: Box<dyn StoreIo>) -> Self {
        let mut recovery = RecoveryReport::default();
        let max = cfg.max_attempts;
        let dir = cfg.dir.clone();
        let mut degraded = false;

        if retried(io.as_mut(), max, "create store dir", |io| {
            io.create_dir_all(&dir)
        })
        .is_err()
        {
            degraded = true;
        }

        // 1. Read the manifest. Absent → fresh store. Corrupt → the
        //    segments are unlocatable; quarantine them all. Unreadable
        //    (IO failure) → keep files intact, run memory-only.
        let manifest_path = dir.join(MANIFEST_NAME);
        let mut gc_allowed = true;
        let mut manifest = match retried(io.as_mut(), max, "read manifest", |io| {
            io.read_file(&manifest_path)
        }) {
            Ok(bytes) => match Manifest::decode(&bytes) {
                Ok(m) => m,
                Err(_) => {
                    recovery.manifest_corrupt = true;
                    obs().quarantined.fetch_add(1, Ordering::Relaxed);
                    Manifest::default()
                }
            },
            Err(StoreError::NotFound) => Manifest::default(),
            Err(_) => {
                degraded = true;
                gc_allowed = false;
                Manifest::default()
            }
        };

        // 2. Validate entries against the segment files: bounds first,
        //    then one batched header read per segment (this is the
        //    scatter/gather path — recovery of N entries costs one open
        //    plus N small reads, not N opens).
        let mut by_seg: HashMap<u32, Vec<(u8, u64)>> = HashMap::new();
        for (k, ent) in &manifest.entries {
            by_seg.entry(ent.seg).or_default().push(*k);
        }
        // Sorted iteration: the fault plan addresses operations by
        // index, so recovery must issue IO in a deterministic order.
        let mut by_seg: Vec<(u32, Vec<(u8, u64)>)> = by_seg.into_iter().collect();
        by_seg.sort_by_key(|(seg, _)| *seg);
        let mut dropped: Vec<(u8, u64)> = Vec::new();
        for (seg, mut keys) in by_seg {
            keys.sort();
            let seg_path = dir.join(seg_file_name(seg));
            let seg_len = match retried(io.as_mut(), max, "stat segment", |io| {
                io.file_len(&seg_path)
            }) {
                Ok(n) => n,
                Err(StoreError::NotFound) => {
                    dropped.extend(keys);
                    continue;
                }
                Err(_) => {
                    // Can't stat now; keep the entries — every get
                    // verifies the payload anyway.
                    continue;
                }
            };
            let mut in_bounds = Vec::new();
            for k in keys {
                let ent = manifest.entries[&k];
                if ent.offset + ent.frame_len() <= seg_len {
                    in_bounds.push(k);
                } else {
                    dropped.push(k);
                }
            }
            let ranges: Vec<(u64, usize)> = in_bounds
                .iter()
                .map(|k| (manifest.entries[k].offset, FRAME_HEADER_LEN))
                .collect();
            match retried(io.as_mut(), max, "verify segment headers", |io| {
                io.read_many(&seg_path, &ranges)
            }) {
                Ok(headers) => {
                    for (k, hdr) in in_bounds.iter().zip(headers) {
                        let ent = manifest.entries[k];
                        let ok = parse_frame_header(&hdr).is_ok_and(|h| {
                            h.kind == ent.kind
                                && h.key == ent.key
                                && h.len == ent.len
                                && h.checksum == ent.checksum
                        });
                        if !ok {
                            dropped.push(*k);
                        }
                    }
                }
                Err(_) => { /* keep; gets will verify */ }
            }
        }
        let had_drops = !dropped.is_empty();
        for k in dropped {
            manifest.entries.remove(&k);
            recovery.entries_dropped += 1;
            obs().quarantined.fetch_add(1, Ordering::Relaxed);
        }
        recovery.entries_kept = manifest.entries.len();
        recovery.recovered_bytes = manifest.entries.values().map(|e| e.len).sum();
        obs()
            .recovered_bytes
            .fetch_add(recovery.recovered_bytes, Ordering::Relaxed);

        // 3. Garbage-collect files the manifest does not reference:
        //    orphan segments (crash after compaction swap) and stale
        //    manifest staging files (torn manifest write). Foreign
        //    files — legacy flat checkpoints — are never touched.
        if gc_allowed {
            if let Ok(files) = retried(io.as_mut(), max, "list store dir", |io| io.list(&dir)) {
                let referenced: std::collections::HashSet<u32> =
                    manifest.entries.values().map(|e| e.seg).collect();
                for path in files {
                    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                        continue;
                    };
                    let orphan_seg =
                        parse_seg_name_owned(name).is_some_and(|id| !referenced.contains(&id));
                    let stale_tmp = name.starts_with(MANIFEST_TMP_NAME);
                    if (orphan_seg || stale_tmp)
                        && retried(io.as_mut(), max, "remove orphan", |io| io.remove(&path)).is_ok()
                    {
                        recovery.files_removed += 1;
                    }
                }
            }
        }

        let mut seg_usage: HashMap<u32, SegUsage> = HashMap::new();
        let mut live_bytes = 0u64;
        for ent in manifest.entries.values() {
            let u = seg_usage.entry(ent.seg).or_default();
            u.live += ent.frame_len();
            u.total += ent.frame_len();
            live_bytes += ent.frame_len();
        }
        let open_seg = manifest.next_seg_id;
        manifest.next_seg_id += 1;

        let mut store = Store {
            mem: lru::Lru::new(cfg.mem_cap_bytes),
            cfg,
            io,
            manifest,
            seg_usage,
            live_bytes,
            open_seg,
            open_seg_len: 0,
            degraded,
            recovery,
        };
        // Persist the salvage so a crash right after open does not
        // re-drop the same entries (best effort).
        if had_drops || store.recovery.manifest_corrupt {
            let _ = store.swap_manifest();
        }
        store
    }

    /// The recovery summary from open.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// True once a permanent fault has degraded the disk tier.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Live disk-tier frame bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Number of disk-tier entries.
    pub fn disk_entries(&self) -> usize {
        self.manifest.entries.len()
    }

    /// Number of memory-tier entries.
    pub fn mem_entries(&self) -> usize {
        self.mem.len()
    }

    /// Drop the memory tier (test hook for forcing disk reads).
    pub fn clear_memory(&mut self) {
        self.mem.clear();
    }

    /// Look up `(kind, key)`. Returns the payload and the tier that
    /// served it, or `None` — a quarantined, missing, or unreadable
    /// entry is a miss, never wrong bytes.
    pub fn get(&mut self, kind: EntryKind, key: u64) -> Option<(Arc<Vec<u8>>, Tier)> {
        let mk = (kind.tag(), key);
        if let Some(payload) = self.mem.get(mk) {
            obs().hits.fetch_add(1, Ordering::Relaxed);
            return Some((payload, Tier::Memory));
        }
        let Some(ent) = self.manifest.entries.get(&mk).copied() else {
            obs().misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        let seg_path = self.cfg.dir.join(seg_file_name(ent.seg));
        let total = ent.frame_len() as usize;
        let bytes = match retried(
            self.io.as_mut(),
            self.cfg.max_attempts,
            "read frame",
            |io| io.read_range(&seg_path, ent.offset, total),
        ) {
            Ok(b) => b,
            Err(StoreError::NotFound) => {
                // Segment vanished under us: quarantine the entry.
                self.quarantine(mk);
                obs().misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                // Unreadable *now*; keep the entry for a later attempt.
                obs().misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let valid = parse_frame_header(&bytes).is_ok_and(|h| {
            h.kind == ent.kind
                && h.key == ent.key
                && h.len == ent.len
                && h.checksum == ent.checksum
                && psa_common::rng::fnv1a(&bytes[FRAME_HEADER_LEN..]) == ent.checksum
        });
        if !valid {
            self.quarantine(mk);
            obs().misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let payload = Arc::new(bytes[FRAME_HEADER_LEN..].to_vec());
        self.mem.put(mk, Arc::clone(&payload));
        self.manifest.clock += 1;
        let clock = self.manifest.clock;
        if let Some(e) = self.manifest.entries.get_mut(&mk) {
            e.stamp = clock; // persisted lazily by the next put
        }
        obs().hits.fetch_add(1, Ordering::Relaxed);
        Some((payload, Tier::Disk))
    }

    /// Store `payload` under `(kind, key)` in both tiers.
    ///
    /// The memory tier always succeeds. A disk failure is returned —
    /// and counted in `write_failures` — after bounded retries,
    /// one-shot eviction on `ENOSPC`, and a segment rotation on
    /// persistent transient errors; a permanent space failure degrades
    /// the instance to memory-only writes.
    pub fn put(
        &mut self,
        kind: EntryKind,
        key: u64,
        payload: Arc<Vec<u8>>,
    ) -> Result<(), StoreError> {
        let mk = (kind.tag(), key);
        self.mem.put(mk, Arc::clone(&payload));
        if self.degraded {
            obs().write_failures.fetch_add(1, Ordering::Relaxed);
            return Err(StoreError::Degraded);
        }
        let checksum = psa_common::rng::fnv1a(&payload);
        if let Some(ent) = self.manifest.entries.get(&mk) {
            if ent.checksum == checksum && ent.len == payload.len() as u64 {
                // Already durable with identical bytes; refresh the
                // stamp lazily.
                self.manifest.clock += 1;
                let clock = self.manifest.clock;
                if let Some(e) = self.manifest.entries.get_mut(&mk) {
                    e.stamp = clock;
                }
                return Ok(());
            }
        }
        let frame = encode_frame(kind.tag(), key, &payload);
        let (seg, offset) = match self.append_frame(&frame) {
            Ok(v) => v,
            Err(e) => {
                obs().write_failures.fetch_add(1, Ordering::Relaxed);
                if matches!(e, StoreError::NoSpace { .. }) {
                    self.degraded = true;
                }
                return Err(e);
            }
        };
        // Frame is durable; now make the manifest reference it.
        self.manifest.clock += 1;
        let ent = Entry {
            kind: kind.tag(),
            key,
            seg,
            offset,
            len: payload.len() as u64,
            checksum,
            stamp: self.manifest.clock,
        };
        if let Some(old) = self.manifest.entries.insert(mk, ent) {
            self.unaccount(&old);
        }
        let u = self.seg_usage.entry(seg).or_default();
        u.live += ent.frame_len();
        u.total += ent.frame_len();
        self.live_bytes += ent.frame_len();

        self.evict_to_budget();
        self.compact_one();
        match self.swap_manifest() {
            Ok(()) => Ok(()),
            Err(e) => {
                // The frame is on disk but not referenced durably; the
                // in-memory manifest keeps serving it, and the next
                // successful swap persists it.
                obs().write_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Remove a disk entry whose bytes failed validation.
    fn quarantine(&mut self, mk: (u8, u64)) {
        if let Some(old) = self.manifest.entries.remove(&mk) {
            self.unaccount(&old);
            obs().quarantined.fetch_add(1, Ordering::Relaxed);
            let _ = self.swap_manifest();
        }
    }

    fn unaccount(&mut self, old: &Entry) {
        if let Some(u) = self.seg_usage.get_mut(&old.seg) {
            u.live = u.live.saturating_sub(old.frame_len());
        }
        self.live_bytes = self.live_bytes.saturating_sub(old.frame_len());
        // A fully-dead, non-open segment is pure garbage: drop the file
        // now (best effort; recovery GC would also catch it).
        if let Some(u) = self.seg_usage.get(&old.seg) {
            if u.live == 0 && old.seg != self.open_seg {
                let path = self.cfg.dir.join(seg_file_name(old.seg));
                let _ = retried(self.io.as_mut(), 1, "remove dead segment", |io| {
                    io.remove(&path)
                });
                self.seg_usage.remove(&old.seg);
            }
        }
    }

    /// Append a frame to the open segment, rotating or evicting as
    /// needed. Returns the `(segment, offset)` the frame landed at.
    fn append_frame(&mut self, frame: &[u8]) -> Result<(u32, u64), StoreError> {
        if self.open_seg_len > 0
            && self.open_seg_len + frame.len() as u64 > self.cfg.segment_cap_bytes
        {
            self.rotate_segment();
        }
        let max = self.cfg.max_attempts;
        let first = {
            let path = self.cfg.dir.join(seg_file_name(self.open_seg));
            retried(self.io.as_mut(), max, "append frame", |io| {
                io.append(&path, frame)
            })
        };
        let err = match first {
            Ok(offset) => {
                self.open_seg_len = offset + frame.len() as u64;
                return Ok((self.open_seg, offset));
            }
            Err(e) => e,
        };
        match err {
            StoreError::NoSpace { .. } => {
                // Try to free our own budget's worth of space, then
                // retry once on a fresh segment.
                self.evict_bytes(frame.len() as u64 * 2);
                self.rotate_segment();
                let path = self.cfg.dir.join(seg_file_name(self.open_seg));
                let offset = retried(self.io.as_mut(), max, "append after evict", |io| {
                    io.append(&path, frame)
                })?;
                self.open_seg_len = offset + frame.len() as u64;
                Ok((self.open_seg, offset))
            }
            StoreError::Transient { .. } => {
                // The torn write may have left garbage at the tail of
                // the open segment; rotate away from it and retry once.
                self.rotate_segment();
                let path = self.cfg.dir.join(seg_file_name(self.open_seg));
                let offset = retried(self.io.as_mut(), max, "append after rotate", |io| {
                    io.append(&path, frame)
                })?;
                self.open_seg_len = offset + frame.len() as u64;
                Ok((self.open_seg, offset))
            }
            e => Err(e),
        }
    }

    fn rotate_segment(&mut self) {
        self.open_seg = self.manifest.next_seg_id;
        self.manifest.next_seg_id += 1;
        self.open_seg_len = 0;
    }

    /// Evict LRU disk entries until the budget holds.
    fn evict_to_budget(&mut self) {
        if self.live_bytes > self.cfg.disk_cap_bytes {
            let over = self.live_bytes - self.cfg.disk_cap_bytes;
            self.evict_bytes(over);
        }
    }

    fn evict_bytes(&mut self, mut want: u64) {
        while want > 0 && self.manifest.entries.len() > 1 {
            let Some(victim) = self
                .manifest
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            else {
                break;
            };
            if let Some(old) = self.manifest.entries.remove(&victim) {
                want = want.saturating_sub(old.frame_len());
                self.unaccount(&old);
            }
        }
    }

    /// Compact at most one mostly-dead segment per call: copy its live
    /// frames into the open segment, repoint the entries, drop the old
    /// file. Crash-safe because the manifest swap happens after the
    /// copies are durable; a crash in between leaves both copies on
    /// disk with the manifest still pointing at the old one.
    fn compact_one(&mut self) {
        let candidate = self
            .seg_usage
            .iter()
            .filter(|(seg, u)| **seg != self.open_seg && u.live > 0 && u.live * 2 < u.total)
            .map(|(seg, _)| *seg)
            .min();
        let Some(seg) = candidate else { return };
        let keys: Vec<(u8, u64)> = self
            .manifest
            .entries
            .iter()
            .filter(|(_, e)| e.seg == seg)
            .map(|(k, _)| *k)
            .collect();
        let seg_path = self.cfg.dir.join(seg_file_name(seg));
        let max = self.cfg.max_attempts;
        for mk in keys {
            let ent = self.manifest.entries[&mk];
            let total = ent.frame_len() as usize;
            let Ok(bytes) = retried(self.io.as_mut(), max, "compaction read", |io| {
                io.read_range(&seg_path, ent.offset, total)
            }) else {
                // Leave the entry where it is; never drop data because
                // compaction could not read it right now.
                return;
            };
            let valid = parse_frame_header(&bytes).is_ok_and(|h| {
                h.checksum == ent.checksum
                    && psa_common::rng::fnv1a(&bytes[FRAME_HEADER_LEN..]) == ent.checksum
            });
            if !valid {
                self.quarantine(mk);
                continue;
            }
            let Ok((new_seg, offset)) = self.append_frame(&bytes) else {
                return;
            };
            let Some(old) = self.manifest.entries.get(&mk).copied() else {
                continue;
            };
            if let Some(e) = self.manifest.entries.get_mut(&mk) {
                e.seg = new_seg;
                e.offset = offset;
            }
            self.unaccount(&old);
            let frame_len = old.frame_len();
            let u = self.seg_usage.entry(new_seg).or_default();
            u.live += frame_len;
            u.total += frame_len;
            self.live_bytes += frame_len;
        }
        // All live frames moved (or quarantined): `unaccount` has
        // already removed the dead segment file once live hit zero.
    }

    /// Atomically replace the on-disk manifest with the in-memory one.
    fn swap_manifest(&mut self) -> Result<(), StoreError> {
        self.manifest.generation += 1;
        let bytes = self.manifest.encode();
        let tmp = self.cfg.dir.join(MANIFEST_TMP_NAME);
        let fin = self.cfg.dir.join(MANIFEST_NAME);
        let max = self.cfg.max_attempts;
        retried(self.io.as_mut(), max, "write manifest tmp", |io| {
            io.write_file(&tmp, &bytes)
        })?;
        retried(self.io.as_mut(), max, "swap manifest", |io| {
            io.rename(&tmp, &fin)
        })?;
        let dir = self.cfg.dir.clone();
        let _ = retried(self.io.as_mut(), max, "sync store dir", |io| {
            io.sync_dir(&dir)
        });
        Ok(())
    }
}

fn parse_seg_name_owned(name: &str) -> Option<u32> {
    disk::parse_seg_file_name(name)
}
