//! Behavioural tests of the tiered store over real files: tier
//! interplay, recovery from torn/corrupt state, retry and degradation
//! under injected faults, eviction and compaction.

use psa_store::fault::FaultPlan;
use psa_store::{EntryKind, Store, StoreConfig, StoreError, Tier};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psa-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &Path) -> StoreConfig {
    StoreConfig::new(dir)
}

fn blob(n: usize, fill: u8) -> Arc<Vec<u8>> {
    Arc::new((0..n).map(|i| fill ^ (i as u8)).collect())
}

fn seg_files(dir: &Path) -> Vec<String> {
    let mut out: Vec<String> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.starts_with("seg-"))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

#[test]
fn roundtrip_through_both_tiers_and_reopen() {
    let dir = test_dir("roundtrip");
    let payload = blob(1234, 0x5a);

    let mut store = Store::open(cfg(&dir));
    store
        .put(EntryKind::Warmup, 42, Arc::clone(&payload))
        .expect("put");

    let (got, tier) = store.get(EntryKind::Warmup, 42).expect("memory hit");
    assert_eq!(tier, Tier::Memory);
    assert_eq!(*got, *payload);

    store.clear_memory();
    let (got, tier) = store.get(EntryKind::Warmup, 42).expect("disk hit");
    assert_eq!(tier, Tier::Disk);
    assert_eq!(*got, *payload);

    drop(store);
    let mut store = Store::open(cfg(&dir));
    assert_eq!(store.recovery().entries_kept, 1);
    assert_eq!(store.recovery().entries_dropped, 0);
    assert_eq!(store.recovery().recovered_bytes, 1234);
    let (got, tier) = store.get(EntryKind::Warmup, 42).expect("hit after reopen");
    assert_eq!(tier, Tier::Disk);
    assert_eq!(*got, *payload);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kinds_are_disjoint_key_spaces() {
    let dir = test_dir("kinds");
    let mut store = Store::open(cfg(&dir));
    store.put(EntryKind::Warmup, 7, blob(64, 1)).expect("put");
    store.put(EntryKind::Report, 7, blob(96, 2)).expect("put");
    store.clear_memory();
    assert_eq!(store.get(EntryKind::Warmup, 7).expect("warmup").0.len(), 64);
    assert_eq!(store.get(EntryKind::Report, 7).expect("report").0.len(), 96);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_on_disk_quarantines_never_serves() {
    let dir = test_dir("bitflip");
    let mut store = Store::open(cfg(&dir));
    store
        .put(EntryKind::Warmup, 9, blob(512, 0x33))
        .expect("put");
    store.clear_memory();

    // Flip one payload bit in the (only) segment file.
    let seg = seg_files(&dir);
    assert_eq!(seg.len(), 1);
    let seg_path = dir.join(&seg[0]);
    let mut bytes = std::fs::read(&seg_path).expect("read seg");
    let n = bytes.len();
    bytes[n - 1] ^= 0x01;
    std::fs::write(&seg_path, &bytes).expect("write seg");

    assert!(
        store.get(EntryKind::Warmup, 9).is_none(),
        "corrupt entry must miss"
    );
    assert_eq!(store.disk_entries(), 0, "corrupt entry must be quarantined");
    assert!(store.get(EntryKind::Warmup, 9).is_none(), "stays gone");

    // The store remains usable.
    store
        .put(EntryKind::Warmup, 9, blob(512, 0x44))
        .expect("re-put");
    store.clear_memory();
    assert_eq!(store.get(EntryKind::Warmup, 9).expect("re-get").0[0], 0x44);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_segment_dropped_at_recovery() {
    let dir = test_dir("truncated");
    let mut store = Store::open(cfg(&dir));
    store.put(EntryKind::Warmup, 1, blob(300, 1)).expect("put");
    store.put(EntryKind::Warmup, 2, blob(300, 2)).expect("put");
    drop(store);

    // Tear the tail off the segment: entry 2's frame becomes
    // out-of-bounds, entry 1 stays intact.
    let seg = seg_files(&dir);
    assert_eq!(seg.len(), 1);
    let seg_path = dir.join(&seg[0]);
    let bytes = std::fs::read(&seg_path).expect("read seg");
    std::fs::write(&seg_path, &bytes[..bytes.len() - 100]).expect("truncate");

    let mut store = Store::open(cfg(&dir));
    assert_eq!(store.recovery().entries_dropped, 1);
    assert_eq!(store.recovery().entries_kept, 1);
    assert_eq!(
        store.get(EntryKind::Warmup, 1).expect("survivor").0.len(),
        300
    );
    assert!(store.get(EntryKind::Warmup, 2).is_none());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_manifest_restarts_empty_but_usable() {
    let dir = test_dir("badman");
    let mut store = Store::open(cfg(&dir));
    store.put(EntryKind::Warmup, 5, blob(200, 5)).expect("put");
    drop(store);

    let man = dir.join("MANIFEST");
    let mut bytes = std::fs::read(&man).expect("read manifest");
    bytes[10] ^= 0xff;
    std::fs::write(&man, &bytes).expect("write manifest");

    let mut store = Store::open(cfg(&dir));
    assert!(store.recovery().manifest_corrupt);
    assert_eq!(store.disk_entries(), 0);
    assert!(store.get(EntryKind::Warmup, 5).is_none());
    // Unlocatable segments were garbage-collected.
    assert!(seg_files(&dir).is_empty());

    store
        .put(EntryKind::Warmup, 5, blob(200, 6))
        .expect("put after recovery");
    store.clear_memory();
    assert_eq!(store.get(EntryKind::Warmup, 5).expect("get").0[0], 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_eio_is_retried_to_success() {
    let dir = test_dir("eio");
    let mut c = cfg(&dir);
    // Op indices: 0 = create_dir, 1 = manifest read (NotFound), then
    // the put: 2 = append (faulted), 3 = retried append (clean), ...
    c.fault_plan = Some(FaultPlan::parse("eio@2").expect("plan"));
    let mut store = Store::open(c);
    store
        .put(EntryKind::Warmup, 3, blob(128, 9))
        .expect("put must succeed via retry");
    store.clear_memory();
    assert_eq!(store.get(EntryKind::Warmup, 3).expect("get").0.len(), 128);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_degrades_to_memory_only_never_wrong_bits() {
    let dir = test_dir("enospc");
    let mut c = cfg(&dir);
    c.fault_plan = Some(FaultPlan::parse("seed=1,enospc=1.0").expect("plan"));
    let mut store = Store::open(c);
    let payload = blob(256, 0x7e);
    let err = store
        .put(EntryKind::Warmup, 11, Arc::clone(&payload))
        .expect_err("disk is full");
    assert!(
        matches!(
            err,
            StoreError::NoSpace { .. } | StoreError::Degraded | StoreError::Io { .. }
        ),
        "unexpected error: {err}"
    );
    // Memory tier still serves the exact bytes.
    let (got, tier) = store.get(EntryKind::Warmup, 11).expect("memory hit");
    assert_eq!(tier, Tier::Memory);
    assert_eq!(*got, *payload);
    // Once degraded, further puts fail fast.
    store
        .put(EntryKind::Warmup, 12, blob(64, 1))
        .expect_err("degraded");

    // A clean reopen sees either nothing or the exact bytes.
    drop(store);
    let mut store = Store::open(cfg(&dir));
    if let Some((got, _)) = store.get(EntryKind::Warmup, 11) {
        assert_eq!(*got, *payload);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_eviction_respects_disk_budget() {
    let dir = test_dir("evict");
    let mut c = cfg(&dir);
    // Frames are 29 + 100 bytes; budget fits two of them.
    c.disk_cap_bytes = 280;
    c.mem_cap_bytes = 0; // force disk reads so stamps reflect gets
    let mut store = Store::open(c);
    store.put(EntryKind::Warmup, 1, blob(100, 1)).expect("put");
    store.put(EntryKind::Warmup, 2, blob(100, 2)).expect("put");
    // Touch 1 so 2 is the LRU victim.
    assert!(store.get(EntryKind::Warmup, 1).is_some());
    store.put(EntryKind::Warmup, 3, blob(100, 3)).expect("put");
    assert!(
        store.disk_bytes() <= 280,
        "budget exceeded: {}",
        store.disk_bytes()
    );
    assert!(
        store.get(EntryKind::Warmup, 2).is_none(),
        "cold entry evicted"
    );
    assert!(
        store.get(EntryKind::Warmup, 1).is_some(),
        "hot entry survives"
    );
    assert!(store.get(EntryKind::Warmup, 3).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_moves_live_frames_and_removes_dead_segment() {
    let dir = test_dir("compact");
    let mut c = cfg(&dir);
    // Frame = 29 + 71 = 100 bytes; three frames fill a segment.
    c.segment_cap_bytes = 300;
    let mut store = Store::open(c);
    store.put(EntryKind::Warmup, 1, blob(71, 1)).expect("put A");
    store.put(EntryKind::Warmup, 2, blob(71, 2)).expect("put B");
    store.put(EntryKind::Warmup, 3, blob(71, 3)).expect("put C");
    let first_seg = seg_files(&dir);
    assert_eq!(first_seg.len(), 1, "A/B/C share the first segment");
    store
        .put(EntryKind::Warmup, 4, blob(71, 4))
        .expect("put D rotates");
    // Kill A and B: the first segment is now 2/3 dead and compaction
    // must move C out and delete the file.
    store
        .put(EntryKind::Warmup, 1, blob(71, 11))
        .expect("overwrite A");
    store
        .put(EntryKind::Warmup, 2, blob(71, 12))
        .expect("overwrite B");
    assert!(
        !seg_files(&dir).contains(&first_seg[0]),
        "dead segment must be compacted away, files now: {:?}",
        seg_files(&dir)
    );
    store.clear_memory();
    assert_eq!(store.get(EntryKind::Warmup, 1).expect("A'").0[0], 11);
    assert_eq!(store.get(EntryKind::Warmup, 2).expect("B'").0[0], 12);
    assert_eq!(store.get(EntryKind::Warmup, 3).expect("C").0[0], 3);
    assert_eq!(store.get(EntryKind::Warmup, 4).expect("D").0[0], 4);

    // Reopen: everything still there.
    drop(store);
    let mut store = Store::open(cfg(&dir));
    assert_eq!(store.recovery().entries_kept, 4);
    assert_eq!(store.get(EntryKind::Warmup, 3).expect("C").0.len(), 71);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_files_in_store_dir_are_never_touched() {
    let dir = test_dir("foreign");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let legacy = dir.join("psa-0123456789abcdef.ckpt");
    std::fs::write(&legacy, b"legacy flat checkpoint").expect("write legacy");

    let mut store = Store::open(cfg(&dir));
    store.put(EntryKind::Warmup, 1, blob(50, 1)).expect("put");
    drop(store);
    let _ = Store::open(cfg(&dir)); // recovery GC pass

    assert_eq!(
        std::fs::read(&legacy).expect("legacy file must survive"),
        b"legacy flat checkpoint"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_manifest_tmp_is_garbage_collected() {
    let dir = test_dir("staletmp");
    let mut store = Store::open(cfg(&dir));
    store.put(EntryKind::Warmup, 1, blob(50, 1)).expect("put");
    drop(store);
    std::fs::write(dir.join("MANIFEST.tmp"), b"torn half-written manifest").expect("write tmp");

    let store = Store::open(cfg(&dir));
    assert!(store.recovery().files_removed >= 1);
    assert!(!dir.join("MANIFEST.tmp").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
