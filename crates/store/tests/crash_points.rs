//! Crash-recovery property test (the robustness contract of the PR):
//! kill the store at **every** IO operation index of a scripted
//! workload, reopen with clean IO, and assert that every readable
//! entry is bit-identical to *some* value the workload actually put
//! under that key — i.e. recovery yields either exact bytes or a clean
//! cold-fallback miss, never wrong bits — and that the reopened store
//! still accepts writes.

use psa_common::DetRng;
use psa_store::fault::{FaultIo, FaultPlan};
use psa_store::io::RealIo;
use psa_store::{EntryKind, Store, StoreConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psa-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg(dir: &Path) -> StoreConfig {
    let mut c = StoreConfig::new(dir);
    // Small segments and a low retry count so the workload exercises
    // rotation and compaction without inflating the op count.
    c.segment_cap_bytes = 400;
    c.max_attempts = 2;
    c
}

/// The scripted workload: a deterministic mix of puts, overwrites and
/// gets across both entry kinds. Returns the full value history per
/// key. Ignores put errors — after a crash point every op fails, and
/// the store must absorb that gracefully.
fn run_workload(store: &mut Store) -> HashMap<(EntryKind, u64), Vec<Vec<u8>>> {
    let mut rng = DetRng::new(0xC0FFEE);
    let mut history: HashMap<(EntryKind, u64), Vec<Vec<u8>>> = HashMap::new();
    let kinds = [EntryKind::Warmup, EntryKind::Report];
    for step in 0..14u64 {
        let kind = kinds[(step % 2) as usize];
        let key = rng.below(5); // few keys → overwrites happen
        let len = 40 + rng.below(160) as usize;
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = store.put(kind, key, Arc::new(payload.clone()));
        history.entry((kind, key)).or_default().push(payload);
        if step % 3 == 0 {
            store.clear_memory(); // force disk reads
            let probe = rng.below(5);
            let _ = store.get(kind, probe);
        }
    }
    history
}

/// After recovery, `get` must return bytes from the key's history or
/// nothing at all.
fn assert_no_wrong_bits(
    store: &mut Store,
    history: &HashMap<(EntryKind, u64), Vec<Vec<u8>>>,
    ctx: &str,
) {
    store.clear_memory();
    for ((kind, key), values) in history {
        if let Some((got, _)) = store.get(*kind, *key) {
            assert!(
                values.iter().any(|v| v == &*got),
                "{ctx}: key ({kind:?},{key}) returned bytes matching no put value"
            );
        }
    }
}

#[test]
fn every_crash_point_recovers_to_exact_bytes_or_clean_miss() {
    // Pass 1: clean run to learn the op count and expected history.
    let dir = test_dir("census");
    let io = FaultIo::new(RealIo::new(), FaultPlan::default());
    let ops = io.op_counter();
    let mut store = Store::open_with_io(small_cfg(&dir), Box::new(io));
    let history = run_workload(&mut store);
    assert_no_wrong_bits(&mut store, &history, "clean run");
    let total_ops = ops.load(Ordering::Relaxed);
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        total_ops > 20,
        "workload too small to be interesting: {total_ops} ops"
    );

    // Pass 2: crash at every op index, reopen clean, verify.
    for crash_at in 0..total_ops {
        let dir = test_dir(&format!("k{crash_at}"));
        let plan = FaultPlan {
            crash_at: Some(crash_at),
            ..FaultPlan::default()
        };
        let io = FaultIo::new(RealIo::new(), plan);
        let mut store = Store::open_with_io(small_cfg(&dir), Box::new(io));
        let history = run_workload(&mut store);
        drop(store);

        let mut store = Store::open(small_cfg(&dir));
        assert_no_wrong_bits(&mut store, &history, &format!("crash@{crash_at}"));
        // The recovered store must still accept new work.
        store
            .put(EntryKind::Report, 999, Arc::new(vec![0xAB; 64]))
            .unwrap_or_else(|e| panic!("crash@{crash_at}: post-recovery put failed: {e}"));
        store.clear_memory();
        let (got, _) = store
            .get(EntryKind::Report, 999)
            .unwrap_or_else(|| panic!("crash@{crash_at}: post-recovery get failed"));
        assert_eq!(*got, vec![0xAB; 64]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn seeded_fault_storms_never_serve_wrong_bits() {
    // All four fault kinds at aggressive rates, several seeds; after
    // each stormy run a clean reopen must satisfy the same contract.
    for seed in 0..6u64 {
        let dir = test_dir(&format!("storm{seed}"));
        let mut c = small_cfg(&dir);
        c.fault_plan = Some(
            FaultPlan::parse(&format!(
                "seed={seed},torn=0.08,flip=0.08,enospc=0.04,eio=0.12"
            ))
            .expect("plan"),
        );
        let mut store = Store::open(c);
        let history = run_workload(&mut store);
        // Contract holds even while faults are still being injected
        // (reads may miss, but never corrupt).
        assert_no_wrong_bits(
            &mut store,
            &history,
            &format!("storm seed {seed} (faulted)"),
        );
        drop(store);

        let mut store = Store::open(small_cfg(&dir));
        assert_no_wrong_bits(&mut store, &history, &format!("storm seed {seed} (clean)"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
