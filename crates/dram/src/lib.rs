//! DRAM timing model.
//!
//! Models what the paper's evaluation depends on:
//!
//! * **Row buffers** — one open row per bank; row hits are much cheaper
//!   than conflicts. Spatial prefetchers owe part of their win to row-buffer
//!   locality (§II-A), and this model reproduces it.
//! * **Bandwidth** — the data bus serialises 64B transfers at a rate set by
//!   the configured MT/s, so prefetch traffic genuinely competes with
//!   demand traffic. Figure 12C sweeps 400–6400 MT/s and the 8-core results
//!   (Figure 15) are bandwidth-bound; both effects come from this model.
//! * **Bank parallelism** — independent banks overlap accesses.
//!
//! # Example
//!
//! ```
//! use psa_dram::{Dram, DramConfig};
//! use psa_common::PLine;
//!
//! let mut dram = Dram::new(DramConfig::default()).unwrap();
//! let t1 = dram.access(PLine::new(0), 0, false);
//! let t2 = dram.access(PLine::new(1), 0, false); // same row: hit, but bus-serialised
//! assert!(t2 > t1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use psa_common::geometry::checked_log2;
use psa_common::obs::Histogram;
use psa_common::PLine;

/// DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Transfer rate in mega-transfers per second (Table I: 3200; Figure
    /// 12C sweeps 400–6400).
    pub mts: u64,
    /// Independent channels, each with its own data bus.
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Core clock in GHz used to convert DRAM time into core cycles.
    pub core_ghz: u64,
    /// CAS latency in core cycles (row already open).
    pub t_cas: u64,
    /// RCD latency in core cycles (activate a closed row).
    pub t_rcd: u64,
    /// Precharge latency in core cycles (close a conflicting row).
    pub t_rp: u64,
    /// Prefetch backpressure: a prefetch aimed at a bank whose backlog
    /// extends more than this many cycles past `now` is dropped. This
    /// approximates a demand-first FR-FCFS controller in a time-warp model
    /// (demands can never queue behind an unbounded prefetch backlog).
    pub prefetch_backlog: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // ~12.5ns per timing component at a 4GHz core = 50 cycles, the
        // ballpark trace-driven simulators use for DDR4-3200.
        Self {
            mts: 3200,
            channels: 1,
            banks_per_channel: 32,
            row_bytes: 8192,
            core_ghz: 4,
            t_cas: 50,
            t_rcd: 50,
            t_rp: 50,
            prefetch_backlog: 200,
        }
    }
}

impl DramConfig {
    /// Core cycles the data bus is busy per 64-byte transfer
    /// (8 bytes per beat).
    pub fn transfer_cycles(&self) -> u64 {
        // cycles = core_hz * 64B / (mts * 1e6 * 8B) = core_ghz * 8000 / mts
        (self.core_ghz * 8000).div_ceil(self.mts)
    }
}

/// Error: unrealisable DRAM shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfigError(String);

impl std::fmt::Display for DramConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid DRAM config: {}", self.0)
    }
}

impl std::error::Error for DramConfigError {}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: u64,
}

psa_common::persist_struct!(Bank {
    open_row,
    busy_until
});

/// DRAM access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Read accesses.
    pub reads: u64,
    /// Write accesses (cache writebacks).
    pub writes: u64,
    /// Accesses hitting an open row.
    pub row_hits: u64,
    /// Accesses to an idle (closed) row.
    pub row_opens: u64,
    /// Accesses conflicting with another open row.
    pub row_conflicts: u64,
    /// Total core cycles the data buses were busy.
    pub bus_busy_cycles: u64,
    /// Prefetches dropped by controller backpressure.
    pub prefetch_drops: u64,
}

impl DramStats {
    /// Row-buffer hit fraction in `[0, 1]`; 0 when unused.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_opens + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// The DRAM device: banks with open-row policy plus per-channel buses.
#[derive(Debug)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    bus_free: Vec<u64>,
    channel_bits: u32,
    bank_bits: u32,
    row_line_shift: u32,
    transfer: u64,
    stats: DramStats,
    /// Queueing-delay distribution: cycles each access waited behind its
    /// target bank (`start - now`). Disabled by default; purely
    /// observational and never part of the checkpoint byte stream (its
    /// total reconciles with the windowed `reads + writes`).
    obs_queue_delay: Histogram,
}

psa_common::persist_struct!(DramStats {
    reads,
    writes,
    row_hits,
    row_opens,
    row_conflicts,
    bus_busy_cycles,
    prefetch_drops,
});

// Address-mapping shifts and the transfer time are derived from the
// configuration; banks, buses and counters are the mutable state.
psa_common::persist_struct!(Dram {
    banks,
    bus_free,
    stats,
});

impl Dram {
    /// Build the device.
    ///
    /// # Errors
    ///
    /// Fails unless channels, banks and row size are powers of two and the
    /// transfer rate is non-zero.
    pub fn new(config: DramConfig) -> Result<Self, DramConfigError> {
        if config.mts == 0 || config.core_ghz == 0 {
            return Err(DramConfigError("mts and core_ghz must be non-zero".into()));
        }
        let channel_bits = checked_log2("channels", config.channels as u64)
            .map_err(|e| DramConfigError(e.to_string()))?;
        let bank_bits = checked_log2("banks", config.banks_per_channel as u64)
            .map_err(|e| DramConfigError(e.to_string()))?;
        let row_lines = config.row_bytes / 64;
        let row_line_bits =
            checked_log2("row lines", row_lines).map_err(|e| DramConfigError(e.to_string()))?;
        Ok(Self {
            config,
            banks: vec![
                Bank {
                    open_row: None,
                    busy_until: 0
                };
                config.channels * config.banks_per_channel
            ],
            bus_free: vec![0; config.channels],
            channel_bits,
            bank_bits,
            row_line_shift: row_line_bits,
            transfer: config.transfer_cycles(),
            stats: DramStats::default(),
            obs_queue_delay: Histogram::disabled(),
        })
    }

    /// Switch the device's observability hook on (per-access queueing
    /// delay histogram). Off by default; enabling changes no simulated
    /// state.
    pub fn enable_obs(&mut self) {
        self.obs_queue_delay = Histogram::new(true);
    }

    /// The queueing-delay distribution recorded so far.
    pub fn obs_queue_delay(&self) -> &Histogram {
        &self.obs_queue_delay
    }

    /// Clear observability state (warm-up boundary reset).
    pub fn reset_obs(&mut self) {
        self.obs_queue_delay.reset();
    }

    /// The configuration in force.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    fn map(&self, line: PLine) -> (usize, usize, u64) {
        // Row-interleaved mapping (row : bank : channel : column): the
        // column bits are lowest, so a sequential stream stays in one row
        // of one bank for a whole row buffer (row-hit locality), then
        // moves to the next channel/bank. This is the locality spatial
        // prefetchers exploit (§II-A of the PSA paper). The bank index is
        // additionally XOR-permuted with low row bits so concurrent
        // streams do not ping-pong rows of one bank persistently
        // (permutation-based page interleaving).
        let raw = line.raw();
        let channel = ((raw >> self.row_line_shift) & ((1 << self.channel_bits) - 1)) as usize;
        let row = raw >> (self.channel_bits + self.bank_bits + self.row_line_shift);
        let bank_mask = (1u64 << self.bank_bits) - 1;
        let bank =
            (((raw >> (self.row_line_shift + self.channel_bits)) ^ row) & bank_mask) as usize;
        (channel, bank, row)
    }

    /// Perform one 64-byte access beginning no earlier than `now`; returns
    /// the core cycle at which the data has fully transferred.
    pub fn access(&mut self, line: PLine, now: u64, is_write: bool) -> u64 {
        let (channel, bank_idx, row) = self.map(line);
        let bank = &mut self.banks[channel * self.config.banks_per_channel + bank_idx];
        let start = now.max(bank.busy_until);
        self.obs_queue_delay.record(start - now);
        let array_latency = match bank.open_row {
            Some(open) if open == row => {
                self.stats.row_hits += 1;
                self.config.t_cas
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                self.config.t_rp + self.config.t_rcd + self.config.t_cas
            }
            None => {
                self.stats.row_opens += 1;
                self.config.t_rcd + self.config.t_cas
            }
        };
        let was_hit = matches!(bank.open_row, Some(open) if open == row);
        bank.open_row = Some(row);
        let data_ready = start + array_latency;
        // Serialise on the channel's data bus.
        let bus_start = data_ready.max(self.bus_free[channel]);
        let done = bus_start + self.transfer;
        self.bus_free[channel] = done;
        // Column reads to an open row pipeline (successive CAS commands gate
        // on the data bus, not on each other); activations occupy the bank
        // until the array delivers.
        bank.busy_until = if was_hit {
            start + self.transfer
        } else {
            data_ready
        };
        self.stats.bus_busy_cycles += self.transfer;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        done
    }

    /// Like [`Dram::access`] but subject to prefetch backpressure: returns
    /// `None` (and leaves the device untouched) when the target bank's
    /// backlog already extends more than `prefetch_backlog` cycles past
    /// `now` — the controller would have deprioritised the prefetch behind
    /// demand traffic anyway, and in a time-warp model the only safe
    /// approximation of that is to drop it.
    pub fn prefetch_access(&mut self, line: PLine, now: u64) -> Option<u64> {
        let (channel, bank_idx, _) = self.map(line);
        let bank = &self.banks[channel * self.config.banks_per_channel + bank_idx];
        if bank.busy_until > now + self.config.prefetch_backlog {
            self.stats.prefetch_drops += 1;
            return None;
        }
        Some(self.access(line, now, false))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Banks still occupied at core cycle `now` — the "pending DRAM queue"
    /// entry of watchdog stall snapshots.
    pub fn busy_banks(&self, now: u64) -> usize {
        self.banks.iter().filter(|b| b.busy_until > now).count()
    }

    /// Latest cycle at which any bank frees up (0 when never used).
    pub fn latest_bank_free_at(&self) -> u64 {
        self.banks.iter().map(|b| b.busy_until).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram(mts: u64) -> Dram {
        Dram::new(DramConfig {
            mts,
            ..DramConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn transfer_cycles_scale_with_rate() {
        assert_eq!(
            DramConfig {
                mts: 3200,
                ..DramConfig::default()
            }
            .transfer_cycles(),
            10
        );
        assert_eq!(
            DramConfig {
                mts: 400,
                ..DramConfig::default()
            }
            .transfer_cycles(),
            80
        );
        assert_eq!(
            DramConfig {
                mts: 6400,
                ..DramConfig::default()
            }
            .transfer_cycles(),
            5
        );
    }

    #[test]
    fn row_hit_is_cheaper_than_conflict() {
        let mut d = dram(3200);
        // First access opens the row.
        let t0 = d.access(PLine::new(0), 0, false);
        assert_eq!(t0, 50 + 50 + 10); // tRCD + tCAS + transfer
                                      // Same row, sequential line: row hit (start gated by bank busy).
        let t1 = d.access(PLine::new(16), t0, false);
        assert_eq!(t1, t0 + 50 + 10);
        // Different row, same bank: conflict.
        let far = PLine::new(1 << 30);
        let t2 = d.access(far, t1, false);
        assert_eq!(t2, t1 + 150 + 10);
        let s = d.stats();
        assert_eq!((s.row_opens, s.row_hits, s.row_conflicts), (1, 1, 1));
    }

    #[test]
    fn banks_overlap_but_bus_serialises() {
        let mut d = dram(3200);
        // Two accesses to different banks at the same time: array latencies
        // overlap; transfers serialise on the single channel bus.
        let a = d.access(PLine::new(0), 0, false);
        let b = d.access(PLine::new(128), 0, false); // next row → bank 1
        assert_eq!(a, 110);
        assert_eq!(b, 120, "second transfer queues behind the first");
    }

    #[test]
    fn sequential_lines_share_a_row() {
        let mut d = dram(3200);
        d.access(PLine::new(0), 0, false);
        for i in 1..128u64 {
            d.access(PLine::new(i), 0, false);
        }
        let s = d.stats();
        assert_eq!(s.row_opens, 1, "one activation serves a whole 8KB row");
        assert_eq!(s.row_hits, 127);
    }

    #[test]
    fn bandwidth_bound_stream() {
        // With many banks, a long stream is bus-bound: completion time grows
        // by ~transfer_cycles per access.
        let mut d = dram(3200);
        let mut last = 0;
        for i in 0..1000u64 {
            last = d.access(PLine::new(i), 0, false);
        }
        let per_access = last as f64 / 1000.0;
        assert!((per_access - 10.0).abs() < 1.0, "got {per_access}");
    }

    #[test]
    fn low_rate_throttles_throughput() {
        let mut slow = dram(400);
        let mut fast = dram(6400);
        let mut t_slow = 0;
        let mut t_fast = 0;
        for i in 0..200u64 {
            t_slow = slow.access(PLine::new(i), 0, false);
            t_fast = fast.access(PLine::new(i), 0, false);
        }
        assert!(t_slow > 10 * t_fast, "slow {t_slow} vs fast {t_fast}");
    }

    #[test]
    fn start_time_respects_now() {
        let mut d = dram(3200);
        let t = d.access(PLine::new(0), 1_000_000, false);
        assert_eq!(t, 1_000_000 + 110);
    }

    #[test]
    fn write_counted_separately() {
        let mut d = dram(3200);
        d.access(PLine::new(0), 0, true);
        d.access(PLine::new(1), 0, false);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn multi_channel_buses_are_independent() {
        let mut d = Dram::new(DramConfig {
            channels: 2,
            ..DramConfig::default()
        })
        .unwrap();
        let a = d.access(PLine::new(0), 0, false); // channel 0
        let b = d.access(PLine::new(128), 0, false); // channel 1
        assert_eq!(a, b, "independent channels should not serialise");
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Dram::new(DramConfig {
            channels: 3,
            ..DramConfig::default()
        })
        .is_err());
        assert!(Dram::new(DramConfig {
            mts: 0,
            ..DramConfig::default()
        })
        .is_err());
    }

    #[test]
    fn obs_queue_delay_counts_every_access() {
        let mut d = dram(3200);
        d.access(PLine::new(0), 0, false);
        assert_eq!(d.obs_queue_delay().total(), 0, "disabled by default");
        d.enable_obs();
        // Back-to-back same-bank accesses at now=0: the second waits for
        // the bank.
        d.access(PLine::new(0), 0, false);
        d.access(PLine::new(16), 0, false);
        d.access(PLine::new(17), 0, true);
        let h = d.obs_queue_delay();
        assert_eq!(h.total(), 3, "one sample per access, reads and writes");
        assert!(h.sum() > 0, "bank backpressure must show up as delay");
        d.reset_obs();
        assert_eq!(d.obs_queue_delay().total(), 0);
    }

    #[test]
    fn row_hit_rate_reported() {
        let mut d = dram(3200);
        let mut now = 0;
        for i in 0..128u64 {
            now = d.access(PLine::new(i * 16), now, false); // same bank, same row until row boundary
        }
        assert!(d.stats().row_hit_rate() > 0.5);
    }
}
