//! Composable memory-hierarchy pipeline.
//!
//! The simulator's miss path used to be hand-duplicated per cache level
//! inside `psa-sim`: the L1D, L2C and LLC each had their own copy of the
//! probe → MSHR-merge → full-file-bump → descend → allocate sequence. This
//! crate replaces those copies with two types:
//!
//! * [`CacheLevel`] — one level of the hierarchy: a [`psa_cache::Cache`]
//!   array, its MSHR file, the level's access latency, an optional
//!   prefetching-module attach point ([`psa_core::PsaModule`]) and a
//!   [`LevelPolicy`] describing how the level participates in tracking,
//!   latency accounting and observability. The bundle persists as a unit
//!   through [`psa_common::Persist`].
//! * [`Walk`] — a borrowed view over an ordered slice of levels plus the
//!   [`MemoryBackend`] below them, running the *single* generic demand
//!   walk, prefetch-issue path and MSHR drain for any hierarchy depth.
//!
//! # Request flow
//!
//! A demand access enters as a [`Request`] at some level and descends on a
//! miss, level by level, until a hit or the memory backend. The PPM page
//! size bit is an explicit field of the request ([`Request::huge`]) and is
//! written into every MSHR entry the walk allocates — the paper's
//! mechanism is the L2C prefetching module reading that bit off the demand
//! stream ([`Walk::demand`] hands it to the attached module together with
//! the oracle [`Request::size`]).
//!
//! Timing is lazy-fill: every operation at cycle *t* first drains MSHR
//! entries whose fills matured (≤ *t*) into the array, then resolves
//! against the array. A full MSHR stalls demands until the earliest
//! in-flight fill and silently drops prefetches, so prefetch traffic has a
//! real resource cost.
//!
//! # Fallibility
//!
//! The walk is fallible end-to-end: broken internal invariants surface as
//! [`HierError`] values instead of panics, so a driver can report a failed
//! run rather than unwind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod level;
mod walk;

pub use level::{
    prefetch_room, CacheLevel, Feedback, LatencyAccounting, LevelLat, LevelPolicy, PortDebug,
    Request, Tracking, WalkStats, LATE_TIMELY_SLACK, PASS,
};
pub use walk::{HierError, MemoryBackend, Walk};
