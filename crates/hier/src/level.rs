//! One cache level and the per-core walk statistics.

use psa_cache::{Cache, Mshr, MshrEntry};
use psa_common::{CodecError, Dec, Enc, PLine, PageSize, Persist, VAddr};
use psa_core::PsaModule;

/// A late (demand-merged) prefetch still earns timely credit when the
/// demand's residual wait was below this, i.e. the prefetch hid almost the
/// whole miss.
pub const LATE_TIMELY_SLACK: u64 = 200;

/// High bit of the block-source annotation: the fill is a pass-through
/// copy (a prefetch destined for a level above, parked here on its way up)
/// whose usefulness is tracked at the destination level, not here.
pub const PASS: u8 = 0x80;

/// Whether a prefetch may take an MSHR slot: prefetches never consume the
/// last quarter of the file, so demand misses keep making progress
/// (prefetches are droppable, demands are not).
pub fn prefetch_room(mshr: &Mshr) -> bool {
    mshr.len() + mshr.capacity().div_ceil(4) <= mshr.capacity()
}

/// How a level credits prefetch usefulness back to its issuer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tracking {
    /// Prefetches filling this level carry no usefulness tracking (the
    /// L1D: its prefetches are untagged and train nothing).
    None,
    /// Usefulness is credited synchronously to the module attached at this
    /// level (the private L2C).
    Module,
    /// The level is shared between cores: usefulness events are queued as
    /// [`Feedback`] values for the driver to dispatch to the owning core's
    /// module, decoded from the block-source annotation (the LLC).
    SharedFeedback,
}

/// Which demand accesses contribute to this level's average-latency
/// statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyAccounting {
    /// None (the L1D — load latency is measured at the port instead).
    Off,
    /// Only trigger accesses — genuine loads/stores, not page-walk or
    /// L1D-prefetch traffic (the L2C).
    Triggered,
    /// Every demand arrival, including page-walk PTE reads (the LLC).
    All,
}

/// How a [`CacheLevel`] participates in tracking, accounting and
/// observability. The walk logic is identical across levels; this is the
/// per-level data that used to be hard-coded in three copies of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelPolicy {
    /// Prefetch-usefulness credit destination.
    pub tracking: Tracking,
    /// Demand-latency statistic coverage.
    pub latency: LatencyAccounting,
    /// Record detailed ring events (`L2cMiss`, `MshrAlloc`, `MshrFree`)
    /// for this level's MSHR file — on for the level the prefetching
    /// module competes for.
    pub ring_detail: bool,
    /// Account full-MSHR bump stalls into [`PortDebug::mshr_bump_stall`]
    /// — on at the hierarchy's entry level, where the stall delays the
    /// core itself.
    pub stall_accounting: bool,
    /// Account clean/merged miss counts and latencies into [`PortDebug`].
    pub miss_profile: bool,
    /// Whether writes propagate into this level's MSHR metadata. Writes
    /// stop at the last private level: the shared LLC sees read traffic
    /// plus explicit writebacks.
    pub absorbs_writes: bool,
}

impl LevelPolicy {
    /// The hierarchy's entry level (the L1D): no tracking, port-side
    /// latency accounting, bump stalls charged to the core.
    pub fn entry_level() -> Self {
        Self {
            tracking: Tracking::None,
            latency: LatencyAccounting::Off,
            ring_detail: false,
            stall_accounting: true,
            miss_profile: false,
            absorbs_writes: true,
        }
    }

    /// A private mid-level with a module attach point (the L2C): module
    /// tracking, triggered latency accounting, detailed ring events and
    /// the miss profile.
    pub fn attach_level() -> Self {
        Self {
            tracking: Tracking::Module,
            latency: LatencyAccounting::Triggered,
            ring_detail: true,
            stall_accounting: false,
            miss_profile: true,
            absorbs_writes: true,
        }
    }

    /// A shared last level (the LLC): feedback-queue tracking, all-demand
    /// latency accounting, writes arrive only as writebacks.
    pub fn shared_level() -> Self {
        Self {
            tracking: Tracking::SharedFeedback,
            latency: LatencyAccounting::All,
            ring_detail: false,
            stall_accounting: false,
            miss_profile: false,
            absorbs_writes: false,
        }
    }
}

/// One demand request descending the hierarchy.
///
/// The PPM bit ([`Request::huge`]) is explicit here — it is written into
/// the MSHR metadata at every level the request allocates in, and handed
/// to the prefetching module at its attach level. [`Request::size`] is the
/// oracle page size from translation, used only by oracle-assisted
/// configurations.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Physical line accessed.
    pub line: PLine,
    /// Program counter of the triggering instruction.
    pub pc: VAddr,
    /// Whether the access is a store.
    pub write: bool,
    /// PPM: the page-size bit observed at translation time (true = the
    /// access falls in a huge page).
    pub huge: bool,
    /// Oracle page size from translation.
    pub size: PageSize,
}

/// One level of the memory hierarchy: array + MSHR file + latency +
/// optional prefetching-module attach point + participation policy.
///
/// Persists as a unit: array, MSHR, and the attached module (when
/// present), in that order.
pub struct CacheLevel {
    /// The tag/data array.
    pub cache: Cache,
    /// The level's miss-status-holding registers.
    pub mshr: Mshr,
    /// Access latency in cycles, charged on every hop through the level.
    pub latency: u64,
    /// The prefetching module attached at this level, if any. The walk
    /// fires it on trigger accesses and credits it per
    /// [`Tracking::Module`].
    pub module: Option<PsaModule>,
    /// How the level participates in tracking and accounting.
    pub policy: LevelPolicy,
    /// Reusable scratch for the walk's MSHR drain (matured entries are
    /// collected here before filling the array). Cleared before every use
    /// and never persisted — it carries no state between drains.
    pub drain_buf: Vec<MshrEntry>,
}

impl CacheLevel {
    /// Bundle a built array into a level; the MSHR file and latency come
    /// from the array's [`psa_cache::CacheConfig`].
    pub fn new(cache: Cache, policy: LevelPolicy) -> Self {
        let mshr = Mshr::new(cache.config().mshr_entries);
        let latency = cache.config().latency;
        Self {
            cache,
            mshr,
            latency,
            module: None,
            policy,
            drain_buf: Vec::new(),
        }
    }

    /// The level's human-readable name (from the array configuration).
    pub fn name(&self) -> &'static str {
        self.cache.config().name
    }

    /// Switch on the level's observability hooks (MSHR occupancy, module
    /// counters). Off by default; enabling changes no simulated state.
    pub fn enable_obs(&mut self) {
        self.mshr.enable_obs();
        if let Some(m) = &mut self.module {
            m.enable_obs();
        }
    }

    /// Clear observability state (warm-up boundary reset).
    pub fn reset_obs(&mut self) {
        self.mshr.reset_obs();
        if let Some(m) = &mut self.module {
            m.reset_obs();
        }
    }
}

impl Persist for CacheLevel {
    fn save(&self, e: &mut Enc) {
        self.cache.save(e);
        self.mshr.save(e);
        if let Some(m) = &self.module {
            m.save(e);
        }
        // `latency` and `policy` are configuration, rebuilt before a
        // restore.
    }

    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        self.cache.load(d)?;
        self.mshr.load(d)?;
        if let Some(m) = &mut self.module {
            m.load(d)?;
        }
        Ok(())
    }
}

/// Per-level demand-latency accumulator (sum of cycles, access count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelLat {
    /// Total demand latency in cycles.
    pub sum: u64,
    /// Demand accesses accounted.
    pub cnt: u64,
}

psa_common::persist_struct!(LevelLat { sum, cnt });

impl LevelLat {
    /// Average latency over the window starting at `start`, or 0.0 when
    /// the window saw no accounted accesses.
    pub fn avg_since(&self, start: LevelLat) -> f64 {
        let (dsum, dcnt) = (self.sum - start.sum, self.cnt - start.cnt);
        if dcnt == 0 {
            0.0
        } else {
            dsum as f64 / dcnt as f64
        }
    }
}

/// Issue-path diagnostics for one core, written by the walk and the
/// memory port. All fields are running totals except
/// [`PortDebug::load_latency_max`], a running maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortDebug {
    /// Cycles demand accesses stalled waiting for a full entry-level MSHR
    /// file to free a slot.
    pub mshr_bump_stall: u64,
    /// Trigger demand misses that allocated a fresh MSHR entry at the
    /// profiled level.
    pub clean_misses: u64,
    /// Trigger demand misses that merged into an in-flight entry (late
    /// prefetches and overlapping demands).
    pub merged_misses: u64,
    /// Total latency of the clean misses, in cycles.
    pub clean_latency_sum: u64,
    /// Total latency of the merged misses, in cycles.
    pub merged_latency_sum: u64,
    /// Loads issued through the port.
    pub loads: u64,
    /// Total load latency (issue → value available), in cycles.
    pub load_latency_sum: u64,
    /// Largest single load latency observed, in cycles (running maximum —
    /// not windowed by [`PortDebug::since`]).
    pub load_latency_max: u64,
}

psa_common::persist_struct!(PortDebug {
    mshr_bump_stall,
    clean_misses,
    merged_misses,
    clean_latency_sum,
    merged_latency_sum,
    loads,
    load_latency_sum,
    load_latency_max,
});

impl PortDebug {
    /// The diagnostics accumulated since `start` was captured. Totals are
    /// differenced; `load_latency_max` is kept as the running maximum.
    pub fn since(&self, start: &PortDebug) -> PortDebug {
        PortDebug {
            mshr_bump_stall: self.mshr_bump_stall - start.mshr_bump_stall,
            clean_misses: self.clean_misses - start.clean_misses,
            merged_misses: self.merged_misses - start.merged_misses,
            clean_latency_sum: self.clean_latency_sum - start.clean_latency_sum,
            merged_latency_sum: self.merged_latency_sum - start.merged_latency_sum,
            loads: self.loads - start.loads,
            load_latency_sum: self.load_latency_sum - start.load_latency_sum,
            load_latency_max: self.load_latency_max,
        }
    }
}

/// Per-core statistics the walk writes as requests descend: one
/// [`LevelLat`] per level (indexed like the walk's level slice) plus the
/// [`PortDebug`] diagnostics.
#[derive(Debug, Clone, Default)]
pub struct WalkStats {
    /// Demand-latency accumulators, one per level.
    pub lat: Vec<LevelLat>,
    /// Issue-path diagnostics.
    pub debug: PortDebug,
}

psa_common::persist_struct!(WalkStats { lat, debug });

impl WalkStats {
    /// Zeroed statistics for a hierarchy of `levels` levels.
    pub fn new(levels: usize) -> Self {
        Self {
            lat: vec![LevelLat::default(); levels],
            debug: PortDebug::default(),
        }
    }
}

/// Cross-core prefetch feedback discovered at a shared level
/// ([`Tracking::SharedFeedback`]), queued for the driver to dispatch to
/// the owning core's module after the step.
#[derive(Debug, Clone, Copy)]
pub enum Feedback {
    /// A tracked prefetched block saw its first demand use, timely.
    Useful {
        /// Block-source annotation (`(core << 1) | competitor`).
        source: u8,
        /// The block.
        line: PLine,
    },
    /// A tracked prefetch merged with a demand too late to hide the miss.
    UsefulLate {
        /// Block-source annotation.
        source: u8,
        /// The block.
        line: PLine,
    },
    /// A tracked prefetched block was evicted unused.
    Useless {
        /// Block-source annotation.
        source: u8,
        /// The block.
        line: PLine,
    },
    /// A tracked prefetch filled the level.
    Fill {
        /// Block-source annotation.
        source: u8,
        /// The block.
        line: PLine,
    },
}

/// A placeholder codec load target only; real values come off the wire.
impl Default for Feedback {
    fn default() -> Self {
        Feedback::Fill {
            source: 0,
            line: PLine::new(0),
        }
    }
}

impl Persist for Feedback {
    fn save(&self, e: &mut Enc) {
        let (tag, source, line) = match *self {
            Feedback::Useful { source, line } => (0u8, source, line),
            Feedback::UsefulLate { source, line } => (1, source, line),
            Feedback::Useless { source, line } => (2, source, line),
            Feedback::Fill { source, line } => (3, source, line),
        };
        tag.save(e);
        source.save(e);
        line.save(e);
    }

    fn load(&mut self, d: &mut Dec) -> Result<(), CodecError> {
        let tag = d.get_u8()?;
        let mut source = 0u8;
        source.load(d)?;
        let mut line = PLine::new(0);
        line.load(d)?;
        *self = match tag {
            0 => Feedback::Useful { source, line },
            1 => Feedback::UsefulLate { source, line },
            2 => Feedback::Useless { source, line },
            3 => Feedback::Fill { source, line },
            _ => return Err(CodecError::Corrupt("feedback tag")),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_room_reserves_the_last_quarter() {
        let mut mshr = Mshr::new(16);
        for i in 0..13 {
            assert!(prefetch_room(&mshr), "slot {i} should admit a prefetch");
            mshr.alloc(
                PLine::new(i),
                1_000 + i,
                psa_cache::MshrMeta {
                    is_prefetch: true,
                    source: 0,
                    huge: false,
                    write: false,
                },
            )
            .unwrap();
        }
        assert!(!prefetch_room(&mshr), "the last quarter is demand-only");
    }

    #[test]
    fn port_debug_windows_all_but_the_max() {
        let start = PortDebug {
            mshr_bump_stall: 5,
            clean_misses: 10,
            merged_misses: 1,
            clean_latency_sum: 100,
            merged_latency_sum: 7,
            loads: 50,
            load_latency_sum: 900,
            load_latency_max: 80,
        };
        let mut end = start;
        end.clean_misses += 3;
        end.loads += 4;
        end.load_latency_sum += 111;
        end.load_latency_max = 120;
        let w = end.since(&start);
        assert_eq!(w.clean_misses, 3);
        assert_eq!(w.loads, 4);
        assert_eq!(w.load_latency_sum, 111);
        assert_eq!(w.mshr_bump_stall, 0);
        assert_eq!(w.load_latency_max, 120, "max is a running maximum");
    }

    #[test]
    fn feedback_persist_roundtrip() {
        let all = [
            Feedback::Useful {
                source: 3,
                line: PLine::new(64),
            },
            Feedback::UsefulLate {
                source: 2,
                line: PLine::new(128),
            },
            Feedback::Useless {
                source: 1,
                line: PLine::new(192),
            },
            Feedback::Fill {
                source: 0,
                line: PLine::new(256),
            },
        ];
        let mut e = Enc::new();
        for fb in &all {
            fb.save(&mut e);
        }
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        for fb in &all {
            let mut got = Feedback::default();
            got.load(&mut d).unwrap();
            assert_eq!(format!("{got:?}"), format!("{fb:?}"));
        }
    }
}
