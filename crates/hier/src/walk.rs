//! The generic N-level demand/prefetch walk.

use psa_cache::{Evicted, FillKind, MshrMeta};
use psa_common::obs::{EventKind, EventRing};
use psa_common::{PLine, VAddr};
use psa_core::{Candidate, FillLevel, PrefetchRequest};

use crate::level::{
    prefetch_room, CacheLevel, Feedback, LatencyAccounting, Request, Tracking, WalkStats,
    LATE_TIMELY_SLACK, PASS,
};

/// An internal hierarchy invariant was violated mid-walk. Reported as a
/// value so a driver can fail the run instead of unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierError {
    /// An MSHR file reported full but had no earliest in-flight fill to
    /// bump the stalled demand to.
    EmptyFullMshr {
        /// The level whose MSHR file misbehaved.
        level: &'static str,
    },
}

impl std::fmt::Display for HierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierError::EmptyFullMshr { level } => {
                write!(f, "{level} MSHR file is full but holds no in-flight fill")
            }
        }
    }
}

impl std::error::Error for HierError {}

/// What sits below the last cache level. Implemented by
/// [`psa_dram::Dram`]; tests substitute fixed-latency doubles.
pub trait MemoryBackend {
    /// Serve a demand (or writeback, `write = true`) arriving at `at`;
    /// returns the completion cycle.
    fn demand(&mut self, line: PLine, at: u64, write: bool) -> u64;
    /// Serve a prefetch arriving at `at`; `None` means the backend
    /// dropped it (e.g. the target bank's backlog is too deep).
    fn prefetch(&mut self, line: PLine, at: u64) -> Option<u64>;
}

impl MemoryBackend for psa_dram::Dram {
    fn demand(&mut self, line: PLine, at: u64, write: bool) -> u64 {
        self.access(line, at, write)
    }

    fn prefetch(&mut self, line: PLine, at: u64) -> Option<u64> {
        self.prefetch_access(line, at)
    }
}

/// A borrowed view over an ordered hierarchy (innermost level first) and
/// the memory backend below it, running the generic demand walk, prefetch
/// issue path and MSHR drains.
///
/// The walk holds no state of its own: a driver assembles one per
/// operation from the owning structures, so the same levels can be
/// regrouped per core around a shared tail.
pub struct Walk<'w, 'l> {
    /// The hierarchy, innermost first; requests descend toward the end.
    pub levels: &'w mut [&'l mut CacheLevel],
    /// What serves misses past the last level.
    pub memory: &'w mut dyn MemoryBackend,
    /// Sampled event timeline (disabled rings record nothing).
    pub ring: &'w mut EventRing,
    /// Queue for [`Tracking::SharedFeedback`] usefulness events.
    pub feedback: &'w mut Vec<Feedback>,
    /// Per-core latency/diagnostic accumulators.
    pub stats: &'w mut WalkStats,
    /// Scratch buffer for module prefetch requests (cleared per firing).
    pub pf_buf: &'w mut Vec<PrefetchRequest>,
    /// The owning core's id, used for ring attribution and prefetch
    /// source tagging.
    pub core: u8,
}

impl Walk<'_, '_> {
    /// A demand access entering the hierarchy at level `start` at cycle
    /// `t`. `trigger` is true only for genuine demand traffic
    /// (loads/stores), which trains and fires prefetching modules and
    /// counts toward triggered statistics; page walks and upper-level
    /// prefetch descents pass `false`.
    ///
    /// Returns the completion cycle and whether level `start` hit.
    ///
    /// # Errors
    ///
    /// Returns [`HierError`] when a hierarchy invariant breaks mid-walk.
    pub fn demand(
        &mut self,
        start: usize,
        req: &Request,
        t: u64,
        trigger: bool,
    ) -> Result<(u64, bool), HierError> {
        self.demand_at(start, req, t, req.write, trigger)
    }

    /// One level's slice of a demand walk. `write` is the request's write
    /// intent as seen by this level (writes stop at the first level that
    /// does not absorb them).
    fn demand_at(
        &mut self,
        k: usize,
        req: &Request,
        t: u64,
        write: bool,
        trigger: bool,
    ) -> Result<(u64, bool), HierError> {
        self.drain(k, t);
        let lat = self.levels[k].latency;
        let policy = self.levels[k].policy;
        let set = self.levels[k].cache.set_of(req.line);
        let probe = self.levels[k].cache.probe(req.line);
        let was_hit = probe.is_some();
        if trigger && !was_hit && policy.ring_detail {
            self.ring
                .record(EventKind::L2cMiss, t, u32::from(self.core), req.line.raw());
        }
        let completion =
            match probe {
                Some(info) => {
                    if info.first_use {
                        match policy.tracking {
                            Tracking::Module => {
                                if let Some(m) = self.levels[k].module.as_mut() {
                                    m.on_useful(req.line, req.pc, info.prefetch_source & 1, true);
                                }
                            }
                            Tracking::SharedFeedback => {
                                if info.prefetch_source & PASS == 0 {
                                    self.feedback.push(Feedback::Useful {
                                        source: info.prefetch_source,
                                        line: req.line,
                                    });
                                }
                            }
                            Tracking::None => {}
                        }
                    }
                    if write {
                        self.levels[k].cache.mark_dirty(req.line);
                    }
                    t + lat
                }
                None if self.levels[k].mshr.pending(req.line).is_some() => {
                    let done = self.levels[k]
                        .mshr
                        .merge(req.line, true, write, t)
                        .max(t + lat);
                    if trigger && policy.miss_profile {
                        self.stats.debug.merged_misses += 1;
                        self.stats.debug.merged_latency_sum += done - t;
                    }
                    done
                }
                None => {
                    let mut t2 = t;
                    if self.levels[k].mshr.is_full() {
                        let bumped = self.levels[k].mshr.earliest_fill().ok_or(
                            HierError::EmptyFullMshr {
                                level: self.levels[k].name(),
                            },
                        )?;
                        if policy.stall_accounting && bumped > t2 {
                            self.stats.debug.mshr_bump_stall += bumped - t2;
                        }
                        t2 = t2.max(bumped);
                        self.drain(k, t2);
                    }
                    let done = if k + 1 == self.levels.len() {
                        self.memory.demand(req.line, t2 + lat, write)
                    } else {
                        let below = write && self.levels[k + 1].policy.absorbs_writes;
                        self.demand_at(k + 1, req, t2 + lat, below, trigger)?.0
                    };
                    self.levels[k]
                        .mshr
                        .alloc(
                            req.line,
                            done,
                            MshrMeta {
                                is_prefetch: false,
                                source: 0,
                                huge: req.huge,
                                write,
                            },
                        )
                        .expect("space ensured above");
                    if policy.ring_detail {
                        self.ring.record(
                            EventKind::MshrAlloc,
                            t2,
                            u32::from(self.core),
                            self.levels[k].mshr.len() as u64,
                        );
                    }
                    if trigger && policy.miss_profile {
                        self.stats.debug.clean_misses += 1;
                        self.stats.debug.clean_latency_sum += done - t;
                    }
                    done
                }
            };
        let account = match policy.latency {
            LatencyAccounting::All => true,
            LatencyAccounting::Triggered => trigger,
            LatencyAccounting::Off => false,
        };
        if account {
            self.stats.lat[k].sum += completion - t;
            self.stats.lat[k].cnt += 1;
        }
        if trigger && self.levels[k].module.is_some() {
            self.fire_module(k, req, was_hit, set, t);
        }
        Ok((completion, was_hit))
    }

    /// Fire the module attached at level `k` on a trigger access: hand it
    /// the demand (with the PPM bit and oracle size) and issue whatever it
    /// asks for.
    fn fire_module(&mut self, k: usize, req: &Request, was_hit: bool, set: usize, t: u64) {
        let Some(mut module) = self.levels[k].module.take() else {
            return;
        };
        let mut buf = std::mem::take(self.pf_buf);
        buf.clear();
        let sd_before = self.ring.enabled().then(|| module.stats().selected_by);
        {
            let here = &*self.levels[k];
            let below = self.levels.get(k + 1).map(|l| &**l);
            let present = |c: &Candidate| match c.fill_level {
                FillLevel::L2C => {
                    here.cache.contains(c.line) || here.mshr.pending(c.line).is_some()
                }
                FillLevel::Llc => below
                    .is_some_and(|b| b.cache.contains(c.line) || b.mshr.pending(c.line).is_some()),
            };
            module.on_access(
                req.line, req.pc, was_hit, req.huge, req.size, set, &present, &mut buf,
            );
        }
        if let Some(before) = sd_before {
            let after = module.stats().selected_by;
            if after[0] > before[0] {
                self.ring
                    .record(EventKind::SdSelect, t, u32::from(self.core), 0);
            } else if after[1] > before[1] {
                self.ring
                    .record(EventKind::SdSelect, t, u32::from(self.core), 1);
            }
        }
        for &r in &buf {
            self.issue(k, r, t);
        }
        *self.pf_buf = buf;
        self.levels[k].module = Some(module);
    }

    /// Issue one module prefetch from attach level `att`. The source tag
    /// encodes the owning core and the competitor bit; fills destined for
    /// `att` but parked below carry the [`PASS`] annotation.
    pub fn issue(&mut self, att: usize, req: PrefetchRequest, t: u64) {
        self.ring.record(
            EventKind::PrefetchIssue,
            t,
            u32::from(self.core),
            req.line.raw(),
        );
        let tagged = (self.core << 1) | (req.source & 1);
        let lat = self.levels[att].latency;
        match req.fill_level {
            FillLevel::L2C => {
                if self.levels[att].cache.contains(req.line)
                    || self.levels[att].mshr.pending(req.line).is_some()
                {
                    return;
                }
                if !prefetch_room(&self.levels[att].mshr) {
                    // No slot at the attach level: downgrade to a
                    // below-level fill rather than dropping — the block
                    // still gets pulled on chip.
                    let _ = self.prefetch_fetch(att + 1, req.line, t + lat, tagged, true);
                    return;
                }
                let Some(done) = self.prefetch_fetch(att + 1, req.line, t + lat, tagged, false)
                else {
                    return; // dropped below: no phantom attach-level fill
                };
                self.levels[att]
                    .mshr
                    .alloc(
                        req.line,
                        done,
                        MshrMeta {
                            is_prefetch: true,
                            source: tagged,
                            huge: false,
                            write: false,
                        },
                    )
                    .expect("room checked above");
            }
            FillLevel::Llc => {
                let _ = self.prefetch_fetch(att + 1, req.line, t + lat, tagged, true);
            }
        }
    }

    /// Pull `line` toward level `k` for a prefetch; `None` means the
    /// prefetch was dropped. `track_here` marks level `k` as the
    /// prefetch's destination (its fill is tracked there); levels passed
    /// through on the way up park [`PASS`]-annotated copies.
    fn prefetch_fetch(
        &mut self,
        k: usize,
        line: PLine,
        t: u64,
        tagged: u8,
        track_here: bool,
    ) -> Option<u64> {
        if k == self.levels.len() {
            return self.memory.prefetch(line, t);
        }
        self.drain(k, t);
        let lat = self.levels[k].latency;
        if self.levels[k].cache.contains(line) {
            return Some(t + lat);
        }
        if self.levels[k].mshr.pending(line).is_some() {
            return Some(self.levels[k].mshr.merge(line, false, false, t));
        }
        if !prefetch_room(&self.levels[k].mshr) {
            return None;
        }
        let done = if k + 1 == self.levels.len() {
            self.memory.prefetch(line, t + lat)?
        } else {
            self.prefetch_fetch(k + 1, line, t + lat, tagged, false)?
        };
        let source = if track_here { tagged } else { tagged | PASS };
        self.levels[k]
            .mshr
            .alloc(
                line,
                done,
                MshrMeta {
                    is_prefetch: true,
                    source,
                    huge: false,
                    write: false,
                },
            )
            .expect("room checked above");
        Some(done)
    }

    /// Drain level `k`'s matured MSHR entries (fills ≤ `now`) into its
    /// array, crediting tracked prefetches and cascading dirty evictions.
    ///
    /// Called on every hop through a level, so the common case — nothing
    /// in flight has matured yet — is a single compare against the MSHR's
    /// cached earliest fill cycle. When entries have matured they are
    /// collected into the level's reusable scratch buffer, never a fresh
    /// allocation.
    pub fn drain(&mut self, k: usize, now: u64) {
        if !self.levels[k].mshr.has_matured(now) {
            return;
        }
        let mut buf = std::mem::take(&mut self.levels[k].drain_buf);
        buf.clear();
        self.levels[k].mshr.drain_filled_into(now, &mut buf);
        let policy = self.levels[k].policy;
        for &e in &buf {
            if policy.ring_detail {
                self.ring.record(
                    EventKind::MshrFree,
                    e.fill_at,
                    u32::from(self.core),
                    self.levels[k].mshr.len() as u64,
                );
            }
            let tracked = match policy.tracking {
                Tracking::SharedFeedback => e.meta.is_prefetch && e.meta.source & PASS == 0,
                _ => e.meta.is_prefetch,
            };
            if tracked && !e.demand_merged {
                match policy.tracking {
                    Tracking::Module => self.ring.record(
                        EventKind::PrefetchFill,
                        e.fill_at,
                        u32::from(self.core),
                        e.line.raw(),
                    ),
                    Tracking::SharedFeedback => self.ring.record(
                        EventKind::PrefetchFill,
                        e.fill_at,
                        u32::from((e.meta.source & !PASS) >> 1),
                        e.line.raw(),
                    ),
                    Tracking::None => {}
                }
            }
            let (kind, late_credit) = if tracked {
                if e.demand_merged {
                    (FillKind::Demand, true)
                } else {
                    (
                        FillKind::Prefetch {
                            source: e.meta.source,
                        },
                        false,
                    )
                }
            } else {
                (FillKind::Demand, false)
            };
            match policy.tracking {
                Tracking::Module => {
                    if let Some(m) = self.levels[k].module.as_mut() {
                        if late_credit {
                            // Late prefetch: the demand merged mid-flight.
                            // Always credit the prefetcher's accuracy;
                            // credit Set Dueling only when the prefetch hid
                            // almost the whole miss.
                            let timely = e.fill_at.saturating_sub(e.merged_at) <= LATE_TIMELY_SLACK;
                            m.on_useful(e.line, VAddr::new(0), e.meta.source & 1, timely);
                        } else if e.meta.is_prefetch {
                            m.on_prefetch_fill(e.line, e.meta.source & 1);
                        }
                    }
                }
                Tracking::SharedFeedback => {
                    if late_credit {
                        if e.fill_at.saturating_sub(e.merged_at) <= LATE_TIMELY_SLACK {
                            self.feedback.push(Feedback::Useful {
                                source: e.meta.source,
                                line: e.line,
                            });
                        } else {
                            self.feedback.push(Feedback::UsefulLate {
                                source: e.meta.source,
                                line: e.line,
                            });
                        }
                    } else if tracked {
                        self.feedback.push(Feedback::Fill {
                            source: e.meta.source,
                            line: e.line,
                        });
                    }
                }
                Tracking::None => {}
            }
            if let Some(ev) = self.levels[k].cache.fill(e.line, kind, e.meta.write) {
                self.evicted(k, ev, now);
            }
        }
        self.levels[k].drain_buf = buf;
    }

    /// Bookkeeping for a block evicted from level `k`: credit useless
    /// tracked prefetches and write dirty victims back one level down.
    fn evicted(&mut self, k: usize, ev: Evicted, now: u64) {
        match self.levels[k].policy.tracking {
            Tracking::Module => {
                if ev.unused_prefetch {
                    if let Some(m) = self.levels[k].module.as_mut() {
                        m.on_useless(ev.line, ev.prefetch_source & 1);
                    }
                }
            }
            Tracking::SharedFeedback => {
                if ev.unused_prefetch && ev.prefetch_source & PASS == 0 {
                    self.feedback.push(Feedback::Useless {
                        source: ev.prefetch_source,
                        line: ev.line,
                    });
                }
            }
            Tracking::None => {}
        }
        if ev.dirty {
            self.writeback(k + 1, ev.line, now);
        }
    }

    /// Writeback path: install a dirty line into level `k` without timing
    /// (store buffers and writeback queues are off the critical path), but
    /// with full eviction bookkeeping. Past the last level the line goes
    /// to the memory backend as a write.
    pub fn writeback(&mut self, k: usize, line: PLine, now: u64) {
        if k == self.levels.len() {
            self.memory.demand(line, now, true);
            return;
        }
        if let Some(ev) = self.levels[k].cache.fill(line, FillKind::Demand, true) {
            self.evicted(k, ev, now);
        }
    }
}
