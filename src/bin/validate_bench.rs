//! Validate emitted JSON documents against their expected schema.
//!
//! ```text
//! validate_bench BENCH_fig08.json [more.json ...]   # bench documents
//! validate_bench --trace trace.json                 # Chrome trace export
//! ```
//!
//! Replaces the old `grep '"failures": []'` CI gate, which silently
//! passed any document that *lacked* the `failures` key entirely. This
//! checks structure first — every required field present, `failures` an
//! actual array — and only then that the array is empty, so a
//! schema-drifted document fails loudly instead of slipping through.
//!
//! Exit codes: 0 valid, 1 validation failure, 2 usage or I/O error.

use page_size_aware_prefetching::sim::Json;

/// Every field a `BENCH_*.json` document must carry (schema v3+,
/// `docs/METRICS.md`).
const REQUIRED: [&str; 7] = [
    "schema_version",
    "figure",
    "title",
    "config",
    "rows",
    "failures",
    "executor",
];

/// Fields of the executor phase profile introduced by schema v3.
const PHASES: [&str; 3] = ["warmup_seconds", "measure_seconds", "snapshot_io_seconds"];

/// Fields of the executor storage-tier counters introduced by schema v4
/// (the crash-safe tiered checkpoint/result store).
const STORE: [&str; 7] = [
    "hits",
    "misses",
    "retries",
    "quarantined",
    "recovered_bytes",
    "write_failures",
    "injected_faults",
];

fn validate_bench(path: &str, doc: &Json) -> Result<(), String> {
    for field in REQUIRED {
        if doc.get(field).is_none() {
            return Err(format!("{path}: missing required field \"{field}\""));
        }
    }
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}: schema_version is not a number"))?;
    if version >= 3.0 {
        let executor = doc.get("executor").expect("checked above");
        let phases = executor
            .get("phases")
            .ok_or_else(|| format!("{path}: schema v3 executor lacks \"phases\""))?;
        for field in PHASES {
            if phases.get(field).is_none() {
                return Err(format!("{path}: missing executor.phases.{field}"));
            }
        }
    }
    if version >= 4.0 {
        let executor = doc.get("executor").expect("checked above");
        let store = executor
            .get("store")
            .ok_or_else(|| format!("{path}: schema v4 executor lacks \"store\""))?;
        for field in STORE {
            if store.get(field).is_none() {
                return Err(format!("{path}: missing executor.store.{field}"));
            }
        }
    }
    let failures = doc
        .get("failures")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: \"failures\" is not an array"))?;
    if !failures.is_empty() {
        let mut msg = format!("{path}: {} recorded failure(s):", failures.len());
        for f in failures {
            let field = |k| f.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
            msg.push_str(&format!(
                "\n  {}/{}: {}",
                field("workload"),
                field("variant"),
                field("reason")
            ));
        }
        return Err(msg);
    }
    Ok(())
}

fn validate_trace(path: &str, doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: no \"traceEvents\" array"))?;
    if events.is_empty() {
        return Err(format!("{path}: traceEvents is empty"));
    }
    for (i, ev) in events.iter().enumerate() {
        for field in ["name", "ph", "ts"] {
            if ev.get(field).is_none() {
                return Err(format!("{path}: traceEvents[{i}] lacks \"{field}\""));
            }
        }
    }
    Ok(())
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let trace_mode = args.first().is_some_and(|a| a == "--trace");
    if trace_mode {
        args.remove(0);
    }
    if args.is_empty() {
        eprintln!("usage: validate_bench [--trace] <file.json> ...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        let result = if trace_mode {
            validate_trace(path, &doc)
        } else {
            validate_bench(path, &doc)
        };
        match result {
            Ok(()) => println!(
                "{path}: valid {}",
                if trace_mode {
                    "trace"
                } else {
                    "bench document"
                }
            ),
            Err(msg) => {
                eprintln!("{msg}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}
