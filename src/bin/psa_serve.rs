//! The `psa_serve` daemon binary: `psa_serve serve` runs the
//! experiment service until SIGTERM (draining in-flight jobs on the
//! way out); `psa_serve client` is a minimal HTTP client for CI and
//! scripting. See `docs/SERVER.md`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(psa_serve::cli::run(&args));
}
