//! Inspect, generate and verify `.psatrace` workload recordings.
//!
//! ```text
//! psa_trace_tool info   <file.psatrace>
//! psa_trace_tool gen    <workload> <file.psatrace> [--seed N] [--instructions N]
//! psa_trace_tool verify <file.psatrace> [--hash <16-hex-digit pin>]
//! ```
//!
//! `gen` records a synthetic catalog workload's instruction stream — the
//! exact stream a live machine would generate — so a recorded file
//! replays bit-identically to the generator it came from (the codec
//! suite pins this). Generation is deterministic: the same workload,
//! seed and instruction count always produce byte-identical files,
//! which is what lets CI regenerate the committed sample fixture and
//! byte-compare it.
//!
//! `verify` runs the full streaming walk (header, every block checksum,
//! record shapes, count reconciliation) and optionally pins the content
//! hash; `info` is `verify` plus a human-readable summary.
//!
//! Exit codes: 0 valid, 1 trace rejected (typed reason on stderr),
//! 2 usage error.

use page_size_aware_prefetching::traces::format::{verify_file, TraceSummary, TraceWriter};
use page_size_aware_prefetching::traces::{catalog, TraceGenerator};
use std::path::Path;

const USAGE: &str = "usage: psa_trace_tool <command>
  info   <file.psatrace>
  gen    <workload> <file.psatrace> [--seed N] [--instructions N]
  verify <file.psatrace> [--hash <16-hex-digit pin>]";

fn fail_usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Parse `--key value` pairs after the positional arguments.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .map(|i| match args.get(i + 1) {
            Some(v) => v.clone(),
            None => fail_usage(&format!("{flag} needs a value")),
        })
}

fn parse_u64(text: &str, what: &str) -> u64 {
    match text.parse() {
        Ok(v) => v,
        Err(_) => fail_usage(&format!("{what} must be an unsigned integer, got {text:?}")),
    }
}

fn verified(path: &str) -> TraceSummary {
    match verify_file(path) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_info(path: &str) {
    let s = verified(path);
    println!("path:          {path}");
    println!("name:          {}", s.header.name);
    println!("content_hash:  {:016x}", s.content_hash);
    println!("huge_fraction: {}", s.header.huge_fraction);
    println!("instructions:  {}", s.header.instructions);
    println!("records:       {}", s.header.records);
    println!("blocks:        {}", s.blocks);
    println!("file_bytes:    {}", s.file_bytes);
}

fn cmd_gen(args: &[String]) {
    let [workload, out] = args
        .first()
        .zip(args.get(1))
        .map(|(a, b)| [a, b])
        .unwrap_or_else(|| {
            fail_usage("gen needs a workload name and an output path");
        });
    let seed = flag_value(args, "--seed").map_or(1, |v| parse_u64(&v, "--seed"));
    let instructions =
        flag_value(args, "--instructions").map_or(50_000, |v| parse_u64(&v, "--instructions"));
    if instructions == 0 {
        fail_usage("--instructions must be at least 1");
    }
    let Some(spec) = catalog::workload(workload) else {
        eprintln!("unknown workload {workload:?} (not in the trace catalog)");
        std::process::exit(2);
    };
    let mut gen = TraceGenerator::new(spec, seed);
    let mut writer = match TraceWriter::create(Path::new(out), spec.name, spec.huge_fraction) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{out}: {e}");
            std::process::exit(1);
        }
    };
    let write = (|| {
        for _ in 0..instructions {
            let instr = gen.next().expect("generator stream is infinite");
            writer.push_instr(&instr)?;
        }
        writer.finish()
    })();
    match write {
        Ok(header) => {
            let s = verified(out);
            println!(
                "wrote {out}: {} instructions, {} records, {} blocks, {} bytes, \
                 content_hash {:016x}",
                header.instructions, header.records, s.blocks, s.file_bytes, s.content_hash
            );
        }
        Err(e) => {
            eprintln!("{out}: {e}");
            let _ = std::fs::remove_file(out);
            std::process::exit(1);
        }
    }
}

fn cmd_verify(path: &str, args: &[String]) {
    let s = verified(path);
    if let Some(pin) = flag_value(args, "--hash") {
        let digits = pin.strip_prefix("0x").unwrap_or(&pin);
        let expected = match u64::from_str_radix(digits, 16) {
            Ok(v) => v,
            Err(_) => fail_usage(&format!("--hash must be hex digits, got {pin:?}")),
        };
        if s.content_hash != expected {
            eprintln!(
                "{path}: content hash {:016x} does not match pinned {expected:016x}",
                s.content_hash
            );
            std::process::exit(1);
        }
    }
    println!(
        "{path}: valid ({} instructions, {} records, content_hash {:016x})",
        s.header.instructions, s.header.records, s.content_hash
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("info") => match args.get(1) {
            Some(path) => cmd_info(path),
            None => fail_usage("info needs a file path"),
        },
        Some("gen") => cmd_gen(&args[1..]),
        Some("verify") => match args.get(1) {
            Some(path) => cmd_verify(path, &args[2..]),
            None => fail_usage("verify needs a file path"),
        },
        Some(other) => fail_usage(&format!("unknown command {other:?}")),
        None => fail_usage("missing command"),
    }
}
