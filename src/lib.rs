//! Facade crate for the *Page Size Aware Cache Prefetching* (MICRO 2022)
//! reproduction.
//!
//! This crate re-exports the workspace members so examples and downstream
//! users can depend on a single package:
//!
//! * [`common`] — address newtypes, page sizes, statistics helpers.
//! * [`vmem`] — virtual-memory substrate: THP allocation, page table, TLBs.
//! * [`cache`] — set-associative caches, MSHRs, per-block metadata.
//! * [`dram`] — banked DRAM timing model with row buffers.
//! * [`cpu`] — approximate out-of-order core model.
//! * [`traces`] — synthetic workload generators and the 80-workload catalog.
//! * [`core`] — the paper's contribution: PPM, Pref-PSA, Pref-PSA-2MB,
//!   Pref-PSA-SD and the selection-logic variants.
//! * [`prefetchers`] — SPP, VLDP, BOP, PPF, IPCP and next-line.
//! * [`sim`] — the trace-driven system simulator tying everything together.
//! * [`experiments`] — one module per paper figure/table.
//!
//! # Quickstart
//!
//! ```
//! use page_size_aware_prefetching::sim::{SimConfig, System};
//! use page_size_aware_prefetching::traces::catalog;
//! use page_size_aware_prefetching::core::PageSizePolicy;
//! use page_size_aware_prefetching::prefetchers::PrefetcherKind;
//!
//! let workload = catalog::workload("milc").expect("catalog entry");
//! let config = SimConfig::default().with_instructions(20_000).with_warmup(5_000);
//! let report = System::single_core(
//!     config,
//!     workload,
//!     PrefetcherKind::Spp,
//!     PageSizePolicy::Psa,
//! )
//! .run();
//! assert!(report.ipc() > 0.0);
//! ```

pub use psa_cache as cache;
pub use psa_common as common;
pub use psa_core as core;
pub use psa_cpu as cpu;
pub use psa_dram as dram;
pub use psa_experiments as experiments;
pub use psa_prefetchers as prefetchers;
pub use psa_sim as sim;
pub use psa_traces as traces;
pub use psa_vmem as vmem;

/// The supported surface in one import: the simulator prelude plus the
/// experiment-runner facade, the prefetcher/policy enums, and the
/// workload catalog.
///
/// Examples, integration tests and downstream drivers should prefer
/// `use page_size_aware_prefetching::prelude::*;` over reaching into the
/// individual `psa_*` crates: these names are the ones the project
/// commits to keeping stable.
pub mod prelude {
    pub use psa_common::obs::{ObsConfig, ObsReport};
    pub use psa_common::stats::weighted_speedup;
    pub use psa_common::{PLine, PageSize, Table, VAddr};
    pub use psa_core::{IndexGrain, PageSizePolicy};
    pub use psa_experiments::runner::{self, RunnerOptions, Settings, Variant};
    pub use psa_prefetchers::PrefetcherKind;
    pub use psa_sim::prelude::*;
    pub use psa_traces::{catalog, PatternMix, Suite, WorkloadSpec};
}
