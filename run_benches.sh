#!/bin/bash
# Regenerates every table/figure. Per-figure scaling keeps the full suite
# tractable; raise the knobs for higher fidelity.
#
# Each target prints its rows as text AND writes BENCH_<figure>.json into
# $PSA_BENCH_JSON_DIR (default: bench_results/). Schema: docs/METRICS.md.
# Cap worker threads with PSA_THREADS (default: all cores).
set -euo pipefail
cd "$(dirname "$0")"

export PSA_BENCH_JSON_DIR="${PSA_BENCH_JSON_DIR:-bench_results}"
mkdir -p "$PSA_BENCH_JSON_DIR"

run() {
  name=$1; shift
  echo "############ $name ############"
  # grep -v exits 1 when every line is filtered (e.g. a fully quiet run);
  # that is not a bench failure.
  env "$@" cargo bench -q -p psa-bench --bench "$name" 2>&1 \
    | { grep -v "^warning\|Compiling\|Finished\|Running" || true; }
  echo
}
run table1_config
run fig03_thp_usage
run fig04_05_psa_magic
run fig02_discard_probability
run fig08_spp_variants
run fig10_sources
run fig09_all_prefetchers
run fig13_l1d_comparison PSA_WORKLOAD_LIMIT=40
run fig11_selection_logic PSA_WORKLOAD_LIMIT=24
run fig12_constrained PSA_WORKLOAD_LIMIT=10
run fig14_multicore4 PSA_MIXES=6
run fig15_multicore8 PSA_MIXES=4
run nonintensive PSA_WORKLOAD_LIMIT=40
run ablations PSA_WORKLOAD_LIMIT=10

echo "############ collected JSON ############"
ls -l "$PSA_BENCH_JSON_DIR"/BENCH_*.json

# Schema + fault gate: every document must match the docs/METRICS.md
# schema and report an empty `failures` array. A non-empty array means
# some (workload, variant) job panicked or tripped the forward-progress
# watchdog — its rows are missing from the figure. The typed validator
# fails loudly on a document that *lacks* the key (the old grep gate
# silently passed those).
echo "############ schema + failure gate ############"
cargo run --release --quiet --bin validate_bench -- \
  "$PSA_BENCH_JSON_DIR"/BENCH_*.json
