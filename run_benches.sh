#!/bin/bash
# Regenerates every table/figure. Per-figure scaling keeps the full suite
# tractable; raise the knobs for higher fidelity.
set -u
cd /root/repo
run() {
  name=$1; shift
  echo "############ $name ############"
  env "$@" cargo bench -q -p psa-bench --bench "$name" 2>&1 | grep -v "^warning\|Compiling\|Finished\|Running"
  echo
}
run table1_config
run fig03_thp_usage
run fig04_05_psa_magic
run fig02_discard_probability
run fig08_spp_variants
run fig10_sources
run fig09_all_prefetchers
run fig13_l1d_comparison PSA_WORKLOAD_LIMIT=40
run fig11_selection_logic PSA_WORKLOAD_LIMIT=24
run fig12_constrained PSA_WORKLOAD_LIMIT=10
run fig14_multicore4 PSA_MIXES=6
run fig15_multicore8 PSA_MIXES=4
run nonintensive PSA_WORKLOAD_LIMIT=40
run ablations PSA_WORKLOAD_LIMIT=10
