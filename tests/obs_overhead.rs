//! The observability layer's core contract, checked end-to-end through
//! the facade: **disabled means invisible** (bit-identical runs, no
//! report), **enabled means reconciled** (histogram totals and event
//! counts line up with the aggregate report) — and either way the
//! simulated machine's behaviour is untouched.

use page_size_aware_prefetching::prelude::*;
use std::time::Instant;

fn quick() -> SimConfig {
    SimConfig::default()
        .with_warmup(3_000)
        .with_instructions(12_000)
}

fn build(config: SimConfig) -> System {
    let w = catalog::workload("mcf").expect("catalog entry");
    System::single_core(config, w, PrefetcherKind::Spp, PageSizePolicy::PsaSd)
}

#[test]
fn disabled_observability_is_bit_identical() {
    let (plain, no_obs) = build(quick()).try_run_observed().expect("plain run");
    assert!(no_obs.is_none(), "disabled obs must not produce a report");

    let (observed, obs) = build(quick().with_obs(ObsConfig::on()))
        .try_run_observed()
        .expect("observed run");
    assert!(obs.is_some(), "enabled obs must produce a report");

    // The observed machine is the same machine: every architectural
    // number matches cycle-for-cycle.
    assert_eq!(plain, observed, "observability changed the simulation");
}

#[test]
fn histograms_reconcile_with_aggregate_counters() {
    let (report, obs) = build(quick().with_obs(ObsConfig::on()))
        .try_run_observed()
        .expect("observed run");
    let obs = obs.expect("enabled obs produces a report");

    // Module counters must equal the windowed aggregate report.
    let module = report.module.expect("prefetching run");
    assert_eq!(obs.counter("module.issued"), Some(module.issued));

    // Every DRAM access passes through the queue-delay histogram.
    let dram = obs.histogram("dram.queue_delay").expect("dram histogram");
    assert_eq!(dram.total, report.dram.reads + report.dram.writes);

    // Loads completed, so load-to-use latency has samples and a sane mean.
    let l2u = obs.histogram("core0.load_to_use").expect("load histogram");
    assert!(l2u.total > 0 && l2u.mean > 0.0);

    // Retire events are recorded (possibly sampled into the ring, but the
    // `seen` counters are exact) once per measured instruction.
    let retires = obs
        .seen
        .iter()
        .find(|(name, _)| *name == "retire")
        .map(|&(_, n)| n)
        .expect("retire kind is reported");
    assert_eq!(retires, quick().instructions);

    // The Chrome export is real JSON with the expected envelope.
    let trace = obs.to_chrome_trace();
    let parsed = Json::parse(&trace).expect("trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "a run this long must sample events");
}

#[test]
fn disabled_observability_costs_nearly_nothing() {
    // Warm both paths once so neither measurement pays first-touch costs.
    build(quick()).run();
    build(quick()).run();

    let runs = 3;
    let t0 = Instant::now();
    for _ in 0..runs {
        build(quick()).run();
    }
    let base = t0.elapsed();

    let t1 = Instant::now();
    for _ in 0..runs {
        build(quick()).run();
    }
    let with_hooks = t1.elapsed();

    // Both loops run the identical disabled-obs configuration — the hooks
    // are compiled in either way — so this guards against a pathological
    // slowdown (e.g. an accidentally always-on ring). The acceptance
    // criterion's strict <2% bound is a CI-level wall-clock claim over
    // tier-1; a unit test on a shared machine needs slack to stay
    // deterministic, hence the loose 3x bound.
    assert!(
        with_hooks < base * 3 + std::time::Duration::from_millis(50),
        "disabled-obs runs diverged wildly: {base:?} vs {with_hooks:?}"
    );
}
