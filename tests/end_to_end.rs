//! Cross-crate integration tests: the paper's structural claims, checked
//! end-to-end through the public facade.

use page_size_aware_prefetching::core::Ppm;
use page_size_aware_prefetching::prelude::*;
use page_size_aware_prefetching::traces::mixes::random_mixes;

/// `PSA_CHECK=1 cargo test` must still switch the invariant audits on now
/// that the simulator itself never reads the environment: the flag
/// arrives through the typed facade.
fn env_check() -> bool {
    RunnerOptions::from_env()
        .expect("PSA_* variables parse")
        .check
        .unwrap_or(false)
}

fn quick() -> SimConfig {
    SimConfig::default()
        .with_warmup(3_000)
        .with_instructions(12_000)
        .with_check(env_check())
}

#[test]
fn simulation_is_deterministic() {
    let w = catalog::workload("milc").unwrap();
    let run = || System::single_core(quick(), w, PrefetcherKind::Ppf, PageSizePolicy::PsaSd).run();
    let (a, b) = (run(), run());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l2c.demand_misses, b.l2c.demand_misses);
    assert_eq!(a.dram.reads, b.dram.reads);
    assert_eq!(a.module.unwrap().issued, b.module.unwrap().issued);
}

#[test]
fn different_seeds_change_the_run() {
    let w = catalog::workload("milc").unwrap();
    let a = System::baseline(quick().with_seed(1), w).run();
    let b = System::baseline(quick().with_seed(2), w).run();
    assert_ne!(
        a.cycles, b.cycles,
        "seed must flow through traces and placement"
    );
}

#[test]
fn bop_psa_variants_degenerate_exactly() {
    // §VI-B1: BOP has no page-indexed structure, so its PSA, PSA-2MB and
    // PSA-SD versions are one and the same — cycle-for-cycle.
    let w = catalog::workload("lbm").unwrap();
    let run = |policy| System::single_core(quick(), w, PrefetcherKind::Bop, policy).run();
    let psa = run(PageSizePolicy::Psa);
    let psa_2mb = run(PageSizePolicy::Psa2m);
    let psa_sd = run(PageSizePolicy::PsaSd);
    assert_eq!(psa.cycles, psa_2mb.cycles);
    assert_eq!(psa.cycles, psa_sd.cycles);
    assert_eq!(psa.dram.reads, psa_sd.dram.reads);
}

#[test]
fn ppm_equals_the_magic_oracle() {
    // §IV-A: PPM's MSHR bit carries exactly the information the motivation
    // sections' "magic" oracle assumed — the runs must be identical.
    let w = catalog::workload("bwaves").unwrap();
    let ppm = System::single_core(quick(), w, PrefetcherKind::Spp, PageSizePolicy::Psa).run();
    let mut magic_cfg = quick();
    magic_cfg.page_size_source = page_size_aware_prefetching::core::ppm::PageSizeSource::Magic;
    let magic = System::single_core(magic_cfg, w, PrefetcherKind::Spp, PageSizePolicy::Psa).run();
    assert_eq!(ppm.cycles, magic.cycles);
    assert_eq!(ppm.module.unwrap().issued, magic.module.unwrap().issued);
}

#[test]
fn psa_never_discards_for_crossing_inside_huge_pages() {
    let w = catalog::workload("lbm").unwrap();
    let orig = System::single_core(quick(), w, PrefetcherKind::Spp, PageSizePolicy::Original).run();
    let psa = System::single_core(quick(), w, PrefetcherKind::Spp, PageSizePolicy::Psa).run();
    assert!(
        orig.boundary.unwrap().discarded_cross_4k_in_huge > 0,
        "the original prefetcher must hit the 4KB wall on a huge-page stream"
    );
    assert_eq!(psa.boundary.unwrap().discarded_cross_4k_in_huge, 0);
}

#[test]
fn prefetching_never_issues_outside_the_page() {
    // Safety: every allowed candidate stayed inside its trigger's physical
    // page — the boundary stats account for every candidate.
    for policy in PageSizePolicy::ALL {
        let w = catalog::workload("roms_s").unwrap();
        let r = System::single_core(quick(), w, PrefetcherKind::Vldp, policy).run();
        let b = r.boundary.unwrap();
        assert_eq!(
            b.candidates,
            b.allowed + b.discarded_cross_4k_in_huge + b.discarded_out_of_page,
            "{policy}: candidate accounting must balance"
        );
    }
}

#[test]
fn ppm_storage_is_one_bit_for_two_page_sizes() {
    assert_eq!(Ppm::bits_required(2), 1);
}

#[test]
fn multicore_mixes_run_and_report() {
    let mixes = random_mixes(1, 4, 7);
    let config = SimConfig::for_cores(4)
        .with_warmup(1_000)
        .with_instructions(5_000)
        .with_check(env_check());
    let report = System::multi_core(
        config,
        &mixes[0],
        PrefetcherKind::Spp,
        PageSizePolicy::PsaSd,
    )
    .run_multi();
    assert_eq!(report.ipc.len(), 4);
    assert!(report.ipc.iter().all(|&i| i > 0.0 && i <= 4.0));
}

#[test]
fn l1d_prefetcher_configurations_run() {
    let w = catalog::workload("GemsFDTD").unwrap();
    let mut best = 0.0f64;
    for l1d in [
        L1dPrefKind::None,
        L1dPrefKind::NextLine,
        L1dPrefKind::Ipcp,
        L1dPrefKind::IpcpPlusPlus,
    ] {
        let mut cfg = quick();
        cfg.l1d_prefetcher = l1d;
        let ipc = System::baseline(cfg, w).run().ipc();
        assert!(ipc > 0.0);
        best = best.max(ipc);
    }
    assert!(best > 0.0);
}

#[test]
fn thp_usage_tracks_the_workload_parameter() {
    for (name, lo, hi) in [("lbm", 0.8, 1.0), ("soplex", 0.0, 0.35)] {
        let w = catalog::workload(name).unwrap();
        let r = System::baseline(quick(), w).run();
        assert!(
            (lo..=hi).contains(&r.huge_usage),
            "{name}: huge usage {:.2} outside [{lo}, {hi}]",
            r.huge_usage
        );
    }
}

#[test]
fn sd_module_reports_dueling_state() {
    let w = catalog::workload("milc").unwrap();
    let r = System::single_core(quick(), w, PrefetcherKind::Spp, PageSizePolicy::PsaSd).run();
    let m = r.module.unwrap();
    assert!(
        m.selected_by[0] + m.selected_by[1] > 0,
        "SD must classify accesses"
    );
}
