//! Randomized property tests over the core data structures and invariants.
//!
//! Cases are driven by the workspace's own deterministic [`DetRng`] (fixed
//! seeds, fixed case counts) instead of an external property-testing
//! framework, so the suite builds with no registry access and every
//! failure reproduces exactly.

use page_size_aware_prefetching::common::geometry::xor_fold;
use page_size_aware_prefetching::common::{
    geomean, DetRng, DistSummary, PAddr, PageSize, SatCounter,
};
use page_size_aware_prefetching::core::boundary::{BoundaryChecker, BoundaryPolicy, Verdict};
use page_size_aware_prefetching::cpu::{Core, CoreConfig, Instr, MemoryPort};
use page_size_aware_prefetching::dram::{Dram, DramConfig};
use page_size_aware_prefetching::traces::{gen::TraceGenerator, PatternMix, Suite, WorkloadSpec};
use psa_common::{PLine, VAddr};

const CASES: usize = 200;

#[test]
fn page_number_and_offset_reassemble() {
    let mut rng = DetRng::new(0xA11CE);
    for _ in 0..CASES {
        let addr = rng.below(1 << 48);
        for size in [PageSize::Size4K, PageSize::Size2M] {
            let a = PAddr::new(addr);
            let rebuilt = a.page_number(size) * size.bytes() + a.page_offset(size);
            assert_eq!(rebuilt, addr);
        }
    }
}

#[test]
fn boundary_checker_matches_reference_model() {
    let mut rng = DetRng::new(0xB0B);
    for _ in 0..CASES {
        let trigger = rng.below(100_000);
        let delta = rng.below(80_000) as i64 - 40_000;
        let huge = rng.chance(0.5);
        let aware = rng.chance(0.5);
        let policy = if aware {
            BoundaryPolicy::PageAware
        } else {
            BoundaryPolicy::Strict4K
        };
        let mut checker = BoundaryChecker::new(policy);
        let t = PLine::new(trigger);
        let Some(c) = t.checked_add(delta) else {
            continue;
        };
        let size = PageSize::from_bit(huge);
        let verdict = checker.check(t, size, c);
        // Reference model, written independently of the implementation.
        let same_4k = trigger >> 6 == c.raw() >> 6;
        let same_2m = trigger >> 15 == c.raw() >> 15;
        let expected = if same_4k {
            Verdict::Allowed
        } else if !huge || !same_2m {
            Verdict::DiscardedOutOfPage
        } else if aware {
            Verdict::Allowed
        } else {
            Verdict::DiscardedCross4KInHuge
        };
        assert_eq!(verdict, expected);
        // Safety invariant: an allowed candidate is always within the
        // trigger's physical page.
        if verdict == Verdict::Allowed {
            assert!(c.same_page(t, size));
        }
    }
}

#[test]
fn sat_counter_stays_in_range() {
    let mut rng = DetRng::new(0x5A7);
    for _ in 0..CASES {
        let bits = 1 + rng.below(15) as u32;
        let mut c = SatCounter::new(bits);
        for _ in 0..rng.index(200) {
            if rng.chance(0.5) {
                c.inc()
            } else {
                c.dec()
            }
            assert!(c.value() <= c.max());
            assert_eq!(c.msb(), c.value() > c.max() / 2);
        }
    }
}

#[test]
fn dist_summary_is_ordered() {
    let mut rng = DetRng::new(0xD157);
    for _ in 0..CASES {
        let samples: Vec<f64> = (0..1 + rng.index(99))
            .map(|_| (rng.unit() - 0.5) * 2e6)
            .collect();
        let s = DistSummary::of(&samples);
        assert!(s.min <= s.p25 + 1e-9);
        assert!(s.p25 <= s.median + 1e-9);
        assert!(s.median <= s.p75 + 1e-9);
        assert!(s.p75 <= s.max + 1e-9);
        assert!(s.min - 1e-9 <= s.mean && s.mean <= s.max + 1e-9);
    }
}

#[test]
fn geomean_is_bounded_by_extremes() {
    let mut rng = DetRng::new(0x6E0);
    for _ in 0..CASES {
        let samples: Vec<f64> = (0..1 + rng.index(49))
            .map(|_| 0.01 + rng.unit() * 99.99)
            .collect();
        let g = geomean(&samples);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        assert!(g >= min * 0.999 && g <= max * 1.001);
    }
}

#[test]
fn xor_fold_stays_in_width() {
    let mut rng = DetRng::new(0xF01D);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let bits = 1 + rng.below(31) as u32;
        assert!(xor_fold(v, bits) < (1u64 << bits));
    }
}

#[test]
fn dram_time_is_causal() {
    let mut rng = DetRng::new(0xD3A);
    for _ in 0..32 {
        let start = rng.below(10_000);
        let mut dram = Dram::new(DramConfig::default()).unwrap();
        for _ in 0..1 + rng.index(63) {
            let done = dram.access(PLine::new(rng.below(1_000_000)), start, false);
            assert!(done > start, "completion must be after issue");
        }
    }
}

#[test]
fn generated_workloads_are_well_formed() {
    let mut rng = DetRng::new(0x9E4);
    for _ in 0..24 {
        let spec = WorkloadSpec {
            name: "prop",
            suite: Suite::Spec06,
            huge_fraction: rng.unit(),
            footprint: 32 << 20,
            mem_ratio: 0.05 + rng.unit() * 0.55,
            store_ratio: 0.1,
            dependent_fraction: 0.5,
            mix: PatternMix {
                stream: rng.unit(),
                pointer_chase: rng.unit(),
                subpage_grain: rng.unit(),
                hot: 0.1,
                ..PatternMix::default()
            },
            intensive: true,
        };
        if spec.validate().is_err() {
            continue;
        }
        let a: Vec<Instr> = TraceGenerator::new(&spec, 9).take(2_000).collect();
        let b: Vec<Instr> = TraceGenerator::new(&spec, 9).take(2_000).collect();
        assert_eq!(a, b, "generator must be deterministic");
    }
}

#[test]
fn core_retires_everything_it_fetches() {
    struct Fixed(u64);
    impl MemoryPort for Fixed {
        fn load(&mut self, _: VAddr, _: VAddr, now: u64) -> u64 {
            now + self.0
        }
        fn store(&mut self, _: VAddr, _: VAddr, _: u64) {}
    }
    let mut rng = DetRng::new(0xC04E);
    for _ in 0..48 {
        let n = 1 + rng.below(1_999);
        let latency = rng.below(300);
        let mut core = Core::new(CoreConfig::default());
        let mut mem = Fixed(latency);
        for i in 0..n {
            if i % 3 == 0 {
                core.execute(&Instr::load(VAddr::new(i), VAddr::new(i * 64)), &mut mem);
            } else {
                core.execute(&Instr::op(VAddr::new(i)), &mut mem);
            }
        }
        let finish = core.drain();
        assert!(finish >= n / 4, "4-wide core cannot beat width");
        assert_eq!(core.stats().instructions, n);
    }
}
