//! Property-based tests over the core data structures and invariants.

use page_size_aware_prefetching::common::geometry::xor_fold;
use page_size_aware_prefetching::common::{geomean, DistSummary, PAddr, PageSize, SatCounter};
use page_size_aware_prefetching::core::boundary::{BoundaryChecker, BoundaryPolicy, Verdict};
use page_size_aware_prefetching::cpu::{Core, CoreConfig, Instr, MemoryPort};
use page_size_aware_prefetching::dram::{Dram, DramConfig};
use page_size_aware_prefetching::traces::{gen::TraceGenerator, PatternMix, Suite, WorkloadSpec};
use proptest::prelude::*;
use psa_common::{PLine, VAddr};

proptest! {
    #[test]
    fn page_number_and_offset_reassemble(addr in 0u64..(1 << 48)) {
        for size in [PageSize::Size4K, PageSize::Size2M] {
            let a = PAddr::new(addr);
            let rebuilt = a.page_number(size) * size.bytes() + a.page_offset(size);
            prop_assert_eq!(rebuilt, addr);
        }
    }

    #[test]
    fn boundary_checker_matches_reference_model(
        trigger in 0u64..100_000,
        delta in -40_000i64..40_000,
        huge in any::<bool>(),
        aware in any::<bool>(),
    ) {
        let policy = if aware { BoundaryPolicy::PageAware } else { BoundaryPolicy::Strict4K };
        let mut checker = BoundaryChecker::new(policy);
        let t = PLine::new(trigger);
        let Some(c) = t.checked_add(delta) else { return Ok(()) };
        let size = PageSize::from_bit(huge);
        let verdict = checker.check(t, size, c);
        // Reference model, written independently of the implementation.
        let same_4k = trigger >> 6 == c.raw() >> 6;
        let same_2m = trigger >> 15 == c.raw() >> 15;
        let expected = if same_4k {
            Verdict::Allowed
        } else if !huge || !same_2m {
            Verdict::DiscardedOutOfPage
        } else if aware {
            Verdict::Allowed
        } else {
            Verdict::DiscardedCross4KInHuge
        };
        prop_assert_eq!(verdict, expected);
        // Safety invariant: an allowed candidate is always within the
        // trigger's physical page.
        if verdict == Verdict::Allowed {
            prop_assert!(c.same_page(t, size));
        }
    }

    #[test]
    fn sat_counter_stays_in_range(bits in 1u32..16, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SatCounter::new(bits);
        for up in ops {
            if up { c.inc() } else { c.dec() }
            prop_assert!(c.value() <= c.max());
            prop_assert_eq!(c.msb(), c.value() > c.max() / 2);
        }
    }

    #[test]
    fn dist_summary_is_ordered(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = DistSummary::of(&samples);
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.max + 1e-9);
        prop_assert!(s.min - 1e-9 <= s.mean && s.mean <= s.max + 1e-9);
    }

    #[test]
    fn geomean_is_bounded_by_extremes(samples in proptest::collection::vec(0.01f64..100.0, 1..50)) {
        let g = geomean(&samples);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min * 0.999 && g <= max * 1.001);
    }

    #[test]
    fn xor_fold_stays_in_width(v in any::<u64>(), bits in 1u32..32) {
        prop_assert!(xor_fold(v, bits) < (1u64 << bits));
    }

    #[test]
    fn dram_time_is_causal(lines in proptest::collection::vec(0u64..1_000_000, 1..64), start in 0u64..10_000) {
        let mut dram = Dram::new(DramConfig::default()).unwrap();
        for &l in &lines {
            let done = dram.access(PLine::new(l), start, false);
            prop_assert!(done > start, "completion must be after issue");
        }
    }

    #[test]
    fn generated_workloads_are_well_formed(
        stream in 0.0f64..1.0,
        chase in 0.0f64..1.0,
        sub in 0.0f64..1.0,
        mem in 0.05f64..0.6,
        huge in 0.0f64..1.0,
    ) {
        let spec = WorkloadSpec {
            name: "prop",
            suite: Suite::Spec06,
            huge_fraction: huge,
            footprint: 32 << 20,
            mem_ratio: mem,
            store_ratio: 0.1,
            dependent_fraction: 0.5,
            mix: PatternMix {
                stream,
                pointer_chase: chase,
                subpage_grain: sub,
                hot: 0.1,
                ..PatternMix::default()
            },
            intensive: true,
        };
        if spec.validate().is_err() {
            return Ok(());
        }
        let a: Vec<Instr> = TraceGenerator::new(&spec, 9).take(2_000).collect();
        let b: Vec<Instr> = TraceGenerator::new(&spec, 9).take(2_000).collect();
        prop_assert_eq!(&a, &b, "generator must be deterministic");
    }

    #[test]
    fn core_retires_everything_it_fetches(n in 1u64..2_000, latency in 0u64..300) {
        struct Fixed(u64);
        impl MemoryPort for Fixed {
            fn load(&mut self, _: VAddr, _: VAddr, now: u64) -> u64 { now + self.0 }
            fn store(&mut self, _: VAddr, _: VAddr, _: u64) {}
        }
        let mut core = Core::new(CoreConfig::default());
        let mut mem = Fixed(latency);
        for i in 0..n {
            if i % 3 == 0 {
                core.execute(&Instr::load(VAddr::new(i), VAddr::new(i * 64)), &mut mem);
            } else {
                core.execute(&Instr::op(VAddr::new(i)), &mut mem);
            }
        }
        let finish = core.drain();
        prop_assert!(finish >= n / 4, "4-wide core cannot beat width");
        prop_assert_eq!(core.stats().instructions, n);
    }
}
