//! Randomized property tests over the core data structures and invariants.
//!
//! Cases are driven by the workspace's own deterministic [`DetRng`] (fixed
//! seeds, fixed case counts) instead of an external property-testing
//! framework, so the suite builds with no registry access and every
//! failure reproduces exactly.

use page_size_aware_prefetching::common::geometry::xor_fold;
use page_size_aware_prefetching::common::{
    geomean, DetRng, DistSummary, PAddr, PLine, PageSize, SatCounter, VAddr,
};
use page_size_aware_prefetching::core::boundary::{BoundaryChecker, BoundaryPolicy, Verdict};
use page_size_aware_prefetching::core::PageSizePolicy;
use page_size_aware_prefetching::cpu::{Core, CoreConfig, Instr, MemoryPort};
use page_size_aware_prefetching::dram::{Dram, DramConfig};
use page_size_aware_prefetching::experiments::RunnerOptions;
use page_size_aware_prefetching::prefetchers::PrefetcherKind;
use page_size_aware_prefetching::sim::{L1dPrefKind, SimConfig, System};
use page_size_aware_prefetching::traces::{
    catalog, gen::TraceGenerator, PatternMix, Suite, WorkloadSpec,
};

const CASES: usize = 200;

/// `PSA_CHECK=1 cargo test` must still switch the invariant audits on now
/// that the simulator itself never reads the environment.
fn env_check() -> bool {
    RunnerOptions::from_env()
        .expect("PSA_* variables parse")
        .check
        .unwrap_or(false)
}

#[test]
fn page_number_and_offset_reassemble() {
    let mut rng = DetRng::new(0xA11CE);
    for _ in 0..CASES {
        let addr = rng.below(1 << 48);
        for size in [PageSize::Size4K, PageSize::Size2M] {
            let a = PAddr::new(addr);
            let rebuilt = a.page_number(size) * size.bytes() + a.page_offset(size);
            assert_eq!(rebuilt, addr);
        }
    }
}

#[test]
fn boundary_checker_matches_reference_model() {
    let mut rng = DetRng::new(0xB0B);
    for _ in 0..CASES {
        let trigger = rng.below(100_000);
        let delta = rng.below(80_000) as i64 - 40_000;
        let huge = rng.chance(0.5);
        let aware = rng.chance(0.5);
        let policy = if aware {
            BoundaryPolicy::PageAware
        } else {
            BoundaryPolicy::Strict4K
        };
        let mut checker = BoundaryChecker::new(policy);
        let t = PLine::new(trigger);
        let Some(c) = t.checked_add(delta) else {
            continue;
        };
        let size = PageSize::from_bit(huge);
        let verdict = checker.check(t, size, c);
        // Reference model, written independently of the implementation.
        let same_4k = trigger >> 6 == c.raw() >> 6;
        let same_2m = trigger >> 15 == c.raw() >> 15;
        let expected = if same_4k {
            Verdict::Allowed
        } else if !huge || !same_2m {
            Verdict::DiscardedOutOfPage
        } else if aware {
            Verdict::Allowed
        } else {
            Verdict::DiscardedCross4KInHuge
        };
        assert_eq!(verdict, expected);
        // Safety invariant: an allowed candidate is always within the
        // trigger's physical page.
        if verdict == Verdict::Allowed {
            assert!(c.same_page(t, size));
        }
    }
}

#[test]
fn sat_counter_stays_in_range() {
    let mut rng = DetRng::new(0x5A7);
    for _ in 0..CASES {
        let bits = 1 + rng.below(15) as u32;
        let mut c = SatCounter::new(bits);
        for _ in 0..rng.index(200) {
            if rng.chance(0.5) {
                c.inc()
            } else {
                c.dec()
            }
            assert!(c.value() <= c.max());
            assert_eq!(c.msb(), c.value() > c.max() / 2);
        }
    }
}

#[test]
fn dist_summary_is_ordered() {
    let mut rng = DetRng::new(0xD157);
    for _ in 0..CASES {
        let samples: Vec<f64> = (0..1 + rng.index(99))
            .map(|_| (rng.unit() - 0.5) * 2e6)
            .collect();
        let s = DistSummary::of(&samples);
        assert!(s.min <= s.p25 + 1e-9);
        assert!(s.p25 <= s.median + 1e-9);
        assert!(s.median <= s.p75 + 1e-9);
        assert!(s.p75 <= s.max + 1e-9);
        assert!(s.min - 1e-9 <= s.mean && s.mean <= s.max + 1e-9);
    }
}

#[test]
fn geomean_is_bounded_by_extremes() {
    let mut rng = DetRng::new(0x6E0);
    for _ in 0..CASES {
        let samples: Vec<f64> = (0..1 + rng.index(49))
            .map(|_| 0.01 + rng.unit() * 99.99)
            .collect();
        let g = geomean(&samples);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        assert!(g >= min * 0.999 && g <= max * 1.001);
    }
}

#[test]
fn xor_fold_stays_in_width() {
    let mut rng = DetRng::new(0xF01D);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let bits = 1 + rng.below(31) as u32;
        assert!(xor_fold(v, bits) < (1u64 << bits));
    }
}

#[test]
fn dram_time_is_causal() {
    let mut rng = DetRng::new(0xD3A);
    for _ in 0..32 {
        let start = rng.below(10_000);
        let mut dram = Dram::new(DramConfig::default()).unwrap();
        for _ in 0..1 + rng.index(63) {
            let done = dram.access(PLine::new(rng.below(1_000_000)), start, false);
            assert!(done > start, "completion must be after issue");
        }
    }
}

#[test]
fn generated_workloads_are_well_formed() {
    let mut rng = DetRng::new(0x9E4);
    for _ in 0..24 {
        let spec = WorkloadSpec {
            name: "prop",
            suite: Suite::Spec06,
            huge_fraction: rng.unit(),
            footprint: 32 << 20,
            mem_ratio: 0.05 + rng.unit() * 0.55,
            store_ratio: 0.1,
            dependent_fraction: 0.5,
            mix: PatternMix {
                stream: rng.unit(),
                pointer_chase: rng.unit(),
                subpage_grain: rng.unit(),
                hot: 0.1,
                ..PatternMix::default()
            },
            intensive: true,
        };
        if spec.validate().is_err() {
            continue;
        }
        let a: Vec<Instr> = TraceGenerator::new(&spec, 9).take(2_000).collect();
        let b: Vec<Instr> = TraceGenerator::new(&spec, 9).take(2_000).collect();
        assert_eq!(a, b, "generator must be deterministic");
    }
}

/// Warm-up budget of the checkpoint determinism properties below; small
/// enough that the full variant matrix stays a unit-test-scale suite.
const CK_WARMUP: u64 = 600;

fn ck_config() -> SimConfig {
    SimConfig::default()
        .with_warmup(CK_WARMUP)
        .with_instructions(2_400)
        .with_check(env_check())
}

/// One machine builder per prefetcher variant the experiments evaluate:
/// every `PrefetcherKind` at PSA-SD, SPP at every page-size policy, the
/// no-prefetch baseline, both L1D prefetchers, and a two-core mix.
#[allow(clippy::type_complexity)]
fn ck_builders() -> Vec<(String, Box<dyn Fn() -> System>)> {
    let lbm = catalog::workload("lbm").unwrap();
    let soplex = catalog::workload("soplex").unwrap();
    let mut v: Vec<(String, Box<dyn Fn() -> System>)> = Vec::new();
    for kind in [
        PrefetcherKind::Spp,
        PrefetcherKind::Vldp,
        PrefetcherKind::Bop,
        PrefetcherKind::Ppf,
        PrefetcherKind::NextLine,
        PrefetcherKind::Pangloss,
        PrefetcherKind::Dspatch,
    ] {
        v.push((
            format!("{kind}-PSA-SD"),
            Box::new(move || System::single_core(ck_config(), lbm, kind, PageSizePolicy::PsaSd)),
        ));
    }
    for policy in [
        PageSizePolicy::Original,
        PageSizePolicy::Psa,
        PageSizePolicy::Psa2m,
    ] {
        v.push((
            format!("SPP{}", policy.suffix()),
            Box::new(move || System::single_core(ck_config(), soplex, PrefetcherKind::Spp, policy)),
        ));
    }
    v.push((
        "no-prefetch".into(),
        Box::new(move || System::baseline(ck_config(), lbm)),
    ));
    for l1d in [L1dPrefKind::NextLine, L1dPrefKind::IpcpPlusPlus] {
        v.push((
            format!("L1D-{l1d}"),
            Box::new(move || {
                let mut config = ck_config();
                config.l1d_prefetcher = l1d;
                System::baseline(config, soplex)
            }),
        ));
    }
    v.push((
        "2-core-mix".into(),
        Box::new(move || {
            System::multi_core(
                SimConfig::for_cores(2)
                    .with_warmup(CK_WARMUP)
                    .with_instructions(2_400)
                    .with_check(env_check()),
                &[lbm, soplex],
                PrefetcherKind::Spp,
                PageSizePolicy::PsaSd,
            )
        }),
    ));
    v
}

/// Run any machine to completion and Debug-format the full report —
/// bit-identical state produces byte-identical strings.
fn ck_run(sys: System) -> String {
    if sys.workload_names().len() == 1 {
        format!("{:?}", sys.try_run().unwrap())
    } else {
        format!("{:?}", sys.try_run_multi().unwrap())
    }
}

#[test]
fn checkpoint_resume_is_exact_for_every_variant_and_split() {
    // Splits land during warm-up, exactly at the warm-up boundary (the
    // instant the experiment runner checkpoints), and mid-measurement.
    let splits = [1, CK_WARMUP, 3 * CK_WARMUP];
    for (name, build) in ck_builders() {
        let straight = ck_run(build());
        for split in splits {
            let mut paused = build();
            let finished = paused.run_to(split).unwrap();
            assert!(!finished, "{name}: split {split} is before the end");
            let snap = paused.snapshot(split);
            let mut fork = build();
            fork.restore(&snap, split).unwrap();
            let resumed = ck_run(fork);
            assert_eq!(straight, resumed, "{name}: split at step {split}");
        }
    }
}

#[test]
fn restored_fork_is_unaffected_by_sibling_forks() {
    for (name, build) in ck_builders().into_iter().step_by(4) {
        let snap = {
            let mut sys = build();
            sys.run_to_warm().unwrap();
            sys.snapshot(1)
        };
        // Sibling A runs to completion, sibling B only partway, before
        // C even restores from the shared snapshot bytes.
        let mut a = build();
        a.restore(&snap, 1).unwrap();
        let ra = ck_run(a);
        let mut b = build();
        b.restore(&snap, 1).unwrap();
        b.run_to(2 * CK_WARMUP).unwrap();
        let mut c = build();
        c.restore(&snap, 1).unwrap();
        let rc = ck_run(c);
        assert_eq!(ra, rc, "{name}: sibling forks interfered");
    }
}

#[test]
fn core_retires_everything_it_fetches() {
    struct Fixed(u64);
    impl MemoryPort for Fixed {
        type Error = std::convert::Infallible;
        fn load(&mut self, _: VAddr, _: VAddr, now: u64) -> Result<u64, Self::Error> {
            Ok(now + self.0)
        }
        fn store(&mut self, _: VAddr, _: VAddr, _: u64) -> Result<(), Self::Error> {
            Ok(())
        }
    }
    let mut rng = DetRng::new(0xC04E);
    for _ in 0..48 {
        let n = 1 + rng.below(1_999);
        let latency = rng.below(300);
        let mut core = Core::new(CoreConfig::default());
        let mut mem = Fixed(latency);
        for i in 0..n {
            if i % 3 == 0 {
                core.execute(&Instr::load(VAddr::new(i), VAddr::new(i * 64)), &mut mem)
                    .unwrap();
            } else {
                core.execute(&Instr::op(VAddr::new(i)), &mut mem).unwrap();
            }
        }
        let finish = core.drain();
        assert!(finish >= n / 4, "4-wide core cannot beat width");
        assert_eq!(core.stats().instructions, n);
    }
}
