#!/bin/bash
# Local CI gate: formatting, lints, the tier-1 build+test, and docs.
# Everything runs offline; a clean exit means the tree is shippable.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== tier-1 under the invariant checker (PSA_CHECK=1) =="
PSA_CHECK=1 cargo test -q

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# If bench results exist, refuse to ship a tree whose last bench sweep
# recorded failed jobs (see docs/ROBUSTNESS.md).
if compgen -G "${PSA_BENCH_JSON_DIR:-bench_results}/BENCH_*.json" > /dev/null; then
  echo "== bench failure gate =="
  for f in "${PSA_BENCH_JSON_DIR:-bench_results}"/BENCH_*.json; do
    if ! grep -q '"failures": \[\]' "$f"; then
      echo "FAILED jobs recorded in $f (see its \"failures\" array)"
      exit 1
    fi
  done
  echo "no failures recorded"
fi

echo "ci.sh: all green"
