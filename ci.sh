#!/bin/bash
# Local CI gate: formatting, lints, the tier-1 build+test, and docs.
# Everything runs offline; a clean exit means the tree is shippable.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "ci.sh: all green"
