#!/bin/bash
# Local CI gate: formatting, lints, the tier-1 build+test, and docs.
# Everything runs offline; a clean exit means the tree is shippable.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== examples build =="
cargo build --release --examples

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== tier-1 under the invariant checker (PSA_CHECK=1) =="
PSA_CHECK=1 cargo test -q

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# If bench results exist, refuse to ship a tree whose last bench sweep
# recorded failed jobs or drifted off the documented schema. The typed
# validator (src/bin/validate_bench.rs) checks structure before content —
# unlike the old grep gate, a document missing the "failures" key fails
# loudly instead of passing silently.
if compgen -G "${PSA_BENCH_JSON_DIR:-bench_results}/BENCH_*.json" > /dev/null; then
  echo "== bench schema + failure gate =="
  cargo run --release --quiet --bin validate_bench -- \
    "${PSA_BENCH_JSON_DIR:-bench_results}"/BENCH_*.json
fi

# Checkpoint determinism gate (see docs/CHECKPOINT.md): run the fig08
# bench cold, then again warmed from the on-disk checkpoint store. The
# stable document sections must match byte for byte, and the warmed
# batch must be >=1.5x faster (the warm-up work is skipped, not redone).
echo "== checkpoint determinism gate (fig08 cold vs warm) =="
CKPT_TMP="$(mktemp -d)"
COLD_TMP="$(mktemp -d)"
WARM_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP"' EXIT
# Warm-up-dominated budget so the gate measures checkpointing, not
# parallelism (it must hold on a single-core runner too).
CKPT_ENV=(PSA_WARMUP=60000 PSA_INSTRUCTIONS=20000 PSA_WORKLOAD_LIMIT=4
          PSA_THREADS=1 PSA_CKPT_DIR="$CKPT_TMP")
env "${CKPT_ENV[@]}" PSA_BENCH_JSON_DIR="$COLD_TMP" \
  cargo bench -q -p psa-bench --bench fig08_spp_variants > /dev/null
env "${CKPT_ENV[@]}" PSA_BENCH_JSON_DIR="$WARM_TMP" \
  cargo bench -q -p psa-bench --bench fig08_spp_variants > /dev/null
# Everything up to the executor timing block is deterministic output.
for d in "$COLD_TMP" "$WARM_TMP"; do
  sed -n '1,/"executor"/p' "$d/BENCH_fig08.json" > "$d/stable.json"
done
if ! cmp -s "$COLD_TMP/stable.json" "$WARM_TMP/stable.json"; then
  echo "checkpoint-warmed fig08 rows differ from the cold run:"
  diff "$COLD_TMP/stable.json" "$WARM_TMP/stable.json" | head -20
  exit 1
fi
grep -q '"ckpt_hits": 0' "$WARM_TMP/BENCH_fig08.json" && {
  echo "warm run restored nothing from $CKPT_TMP"; exit 1; }
ratio_ok="$(awk '
  match($0, /"batch_wall_seconds": [0-9.eE+-]+/) {
    v[++n] = substr($0, RSTART + 22, RLENGTH - 22)
  }
  END { exit !(n == 2 && v[2] > 0 && v[1] / v[2] >= 1.5) }
' "$COLD_TMP/BENCH_fig08.json" "$WARM_TMP/BENCH_fig08.json" \
  && echo yes || echo no)"
if [ "$ratio_ok" != yes ]; then
  echo "warm batch is not >=1.5x faster than cold:"
  grep '"batch_wall_seconds"' "$COLD_TMP/BENCH_fig08.json" \
                              "$WARM_TMP/BENCH_fig08.json"
  exit 1
fi
echo "rows identical, warm-up sharing >=1.5x faster"

# Observability smoke: a tiny observed fig08 run must export a valid
# Chrome trace_event document (chrome://tracing / Perfetto loadable) and
# a schema-valid bench document (see docs/OBSERVABILITY.md).
echo "== observability trace smoke (PSA_OBS=1) =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP"' EXIT
env PSA_WARMUP=2000 PSA_INSTRUCTIONS=8000 PSA_WORKLOAD_LIMIT=2 PSA_THREADS=1 \
    PSA_OBS=1 PSA_OBS_TRACE="$OBS_TMP/trace.json" PSA_BENCH_JSON_DIR="$OBS_TMP" \
  cargo bench -q -p psa-bench --bench fig08_spp_variants > /dev/null
cargo run --release --quiet --bin validate_bench -- --trace "$OBS_TMP/trace.json"
cargo run --release --quiet --bin validate_bench -- "$OBS_TMP/BENCH_fig08.json"

# Golden bit-identity gate (see docs/HIERARCHY.md): a fixed-budget fig08
# sweep must produce byte-for-byte the committed stable sections — any
# hierarchy refactor that changes timing shows up here as a diff, not as
# a silent drift. The document is schema-validated first, then compared.
# The gate runs under BOTH optimized profiles: `bench` (what the sweeps
# use) and `release` (the tier-1 binary) — the data-oriented hot path
# leans on optimizer behaviour, so each shipped codegen configuration
# must reproduce the golden bytes independently.
# After an *intentional* behaviour change, regenerate deliberately with
# PSA_UPDATE_GOLDEN=1 ./ci.sh (and review the diff in the commit).
echo "== golden bit-identity gate (fig08 stable sections) =="
GOLDEN=crates/experiments/tests/golden/fig08_stable.json
GOLD_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP" "$GOLD_TMP"' EXIT
for profile in bench release; do
  PDIR="$GOLD_TMP/$profile"
  mkdir -p "$PDIR"
  env PSA_WARMUP=2000 PSA_INSTRUCTIONS=8000 PSA_WORKLOAD_LIMIT=2 PSA_THREADS=1 \
      PSA_BENCH_JSON_DIR="$PDIR" \
    cargo bench -q -p psa-bench --bench fig08_spp_variants \
      --profile "$profile" > /dev/null
  cargo run --release --quiet --bin validate_bench -- "$PDIR/BENCH_fig08.json"
  sed -n '1,/"executor"/p' "$PDIR/BENCH_fig08.json" > "$PDIR/stable.json"
done
if ! cmp -s "$GOLD_TMP/bench/stable.json" "$GOLD_TMP/release/stable.json"; then
  echo "bench-profile and release-profile fig08 stable sections disagree:"
  diff "$GOLD_TMP/bench/stable.json" "$GOLD_TMP/release/stable.json" | head -20
  exit 1
fi
if [ "${PSA_UPDATE_GOLDEN:-0}" = 1 ]; then
  cp "$GOLD_TMP/bench/stable.json" "$GOLDEN"
  echo "golden file regenerated: $GOLDEN"
else
  for profile in bench release; do
    if ! cmp -s "$GOLD_TMP/$profile/stable.json" "$GOLDEN"; then
      echo "fig08 stable sections ($profile profile) drifted from $GOLDEN:"
      diff "$GOLDEN" "$GOLD_TMP/$profile/stable.json" | head -20
      echo "(intentional change? regenerate with PSA_UPDATE_GOLDEN=1 ./ci.sh)"
      exit 1
    fi
  done
  echo "stable sections bit-identical to $GOLDEN (bench + release profiles)"
fi

# IO fault-injection gate (see docs/ROBUSTNESS.md): the same fixed-budget
# fig08 sweep, but with the checkpoint store running over a seeded
# FaultPlan that mixes all four fault kinds (torn writes, bit flips,
# ENOSPC, transient EIO). Cold pass seeds the faulted store, warm pass
# reads back through it. Both documents must schema-validate with an
# empty failures array, both stable sections must match the golden bytes
# (graceful degradation: faults cost re-work, never wrong bits), and the
# store counters must prove faults actually fired.
echo "== IO fault-injection gate (fig08 under PSA_FAULT_PLAN) =="
FAULT_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP" "$GOLD_TMP" \
  "$FAULT_TMP"' EXIT
mkdir -p "$FAULT_TMP/store" "$FAULT_TMP/cold" "$FAULT_TMP/warm"
FAULT_ENV=(PSA_WARMUP=2000 PSA_INSTRUCTIONS=8000 PSA_WORKLOAD_LIMIT=2
           PSA_THREADS=1 PSA_CKPT_DIR="$FAULT_TMP/store"
           PSA_FAULT_PLAN="seed=7,torn=0.05,flip=0.05,enospc=0.02,eio=0.10")
for pass in cold warm; do
  env "${FAULT_ENV[@]}" PSA_BENCH_JSON_DIR="$FAULT_TMP/$pass" \
    cargo bench -q -p psa-bench --bench fig08_spp_variants > /dev/null
  cargo run --release --quiet --bin validate_bench -- \
    "$FAULT_TMP/$pass/BENCH_fig08.json"
  sed -n '1,/"executor"/p' "$FAULT_TMP/$pass/BENCH_fig08.json" \
    > "$FAULT_TMP/$pass/stable.json"
  if ! cmp -s "$FAULT_TMP/$pass/stable.json" "$GOLDEN"; then
    echo "faulted $pass fig08 run drifted from $GOLDEN:"
    diff "$GOLDEN" "$FAULT_TMP/$pass/stable.json" | head -20
    exit 1
  fi
done
if grep -q '"injected_faults": 0' "$FAULT_TMP/cold/BENCH_fig08.json" \
   && grep -q '"injected_faults": 0' "$FAULT_TMP/warm/BENCH_fig08.json"; then
  echo "fault plan injected nothing across cold+warm passes"
  exit 1
fi
echo "rows identical under injected faults, plan verifiably active"

echo "ci.sh: all green"
