#!/bin/bash
# Local CI gate: formatting, lints, the tier-1 build+test, and docs.
# Everything runs offline; a clean exit means the tree is shippable.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== examples build =="
cargo build --release --examples

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== tier-1 under the invariant checker (PSA_CHECK=1) =="
PSA_CHECK=1 cargo test -q

echo "== cargo doc --no-deps (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# If bench results exist, refuse to ship a tree whose last bench sweep
# recorded failed jobs or drifted off the documented schema. The typed
# validator (src/bin/validate_bench.rs) checks structure before content —
# unlike the old grep gate, a document missing the "failures" key fails
# loudly instead of passing silently.
if compgen -G "${PSA_BENCH_JSON_DIR:-bench_results}/BENCH_*.json" > /dev/null; then
  echo "== bench schema + failure gate =="
  cargo run --release --quiet --bin validate_bench -- \
    "${PSA_BENCH_JSON_DIR:-bench_results}"/BENCH_*.json
fi

# Checkpoint determinism gate (see docs/CHECKPOINT.md): run the fig08
# bench cold, then again warmed from the on-disk checkpoint store. The
# stable document sections must match byte for byte, and the warmed
# batch must be >=1.5x faster (the warm-up work is skipped, not redone).
echo "== checkpoint determinism gate (fig08 cold vs warm) =="
CKPT_TMP="$(mktemp -d)"
COLD_TMP="$(mktemp -d)"
WARM_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP"' EXIT
# Warm-up-dominated budget so the gate measures checkpointing, not
# parallelism (it must hold on a single-core runner too).
CKPT_ENV=(PSA_WARMUP=60000 PSA_INSTRUCTIONS=20000 PSA_WORKLOAD_LIMIT=4
          PSA_THREADS=1 PSA_CKPT_DIR="$CKPT_TMP")
env "${CKPT_ENV[@]}" PSA_BENCH_JSON_DIR="$COLD_TMP" \
  cargo bench -q -p psa-bench --bench fig08_spp_variants > /dev/null
env "${CKPT_ENV[@]}" PSA_BENCH_JSON_DIR="$WARM_TMP" \
  cargo bench -q -p psa-bench --bench fig08_spp_variants > /dev/null
# Everything up to the executor timing block is deterministic output.
for d in "$COLD_TMP" "$WARM_TMP"; do
  sed -n '1,/"executor"/p' "$d/BENCH_fig08.json" > "$d/stable.json"
done
if ! cmp -s "$COLD_TMP/stable.json" "$WARM_TMP/stable.json"; then
  echo "checkpoint-warmed fig08 rows differ from the cold run:"
  diff "$COLD_TMP/stable.json" "$WARM_TMP/stable.json" | head -20
  exit 1
fi
grep -q '"ckpt_hits": 0' "$WARM_TMP/BENCH_fig08.json" && {
  echo "warm run restored nothing from $CKPT_TMP"; exit 1; }
ratio_ok="$(awk '
  match($0, /"batch_wall_seconds": [0-9.eE+-]+/) {
    v[++n] = substr($0, RSTART + 22, RLENGTH - 22)
  }
  END { exit !(n == 2 && v[2] > 0 && v[1] / v[2] >= 1.5) }
' "$COLD_TMP/BENCH_fig08.json" "$WARM_TMP/BENCH_fig08.json" \
  && echo yes || echo no)"
if [ "$ratio_ok" != yes ]; then
  echo "warm batch is not >=1.5x faster than cold:"
  grep '"batch_wall_seconds"' "$COLD_TMP/BENCH_fig08.json" \
                              "$WARM_TMP/BENCH_fig08.json"
  exit 1
fi
echo "rows identical, warm-up sharing >=1.5x faster"

# Observability smoke: a tiny observed fig08 run must export a valid
# Chrome trace_event document (chrome://tracing / Perfetto loadable) and
# a schema-valid bench document (see docs/OBSERVABILITY.md).
echo "== observability trace smoke (PSA_OBS=1) =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP"' EXIT
env PSA_WARMUP=2000 PSA_INSTRUCTIONS=8000 PSA_WORKLOAD_LIMIT=2 PSA_THREADS=1 \
    PSA_OBS=1 PSA_OBS_TRACE="$OBS_TMP/trace.json" PSA_BENCH_JSON_DIR="$OBS_TMP" \
  cargo bench -q -p psa-bench --bench fig08_spp_variants > /dev/null
cargo run --release --quiet --bin validate_bench -- --trace "$OBS_TMP/trace.json"
cargo run --release --quiet --bin validate_bench -- "$OBS_TMP/BENCH_fig08.json"

# Golden bit-identity gate (see docs/HIERARCHY.md): a fixed-budget fig08
# sweep must produce byte-for-byte the committed stable sections — any
# hierarchy refactor that changes timing shows up here as a diff, not as
# a silent drift. The document is schema-validated first, then compared.
# The gate runs under BOTH optimized profiles: `bench` (what the sweeps
# use) and `release` (the tier-1 binary) — the data-oriented hot path
# leans on optimizer behaviour, so each shipped codegen configuration
# must reproduce the golden bytes independently.
# After an *intentional* behaviour change, regenerate deliberately with
# PSA_UPDATE_GOLDEN=1 ./ci.sh (and review the diff in the commit).
echo "== golden bit-identity gate (fig08 stable sections) =="
GOLDEN=crates/experiments/tests/golden/fig08_stable.json
GOLD_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP" "$GOLD_TMP"' EXIT
for profile in bench release; do
  PDIR="$GOLD_TMP/$profile"
  mkdir -p "$PDIR"
  env PSA_WARMUP=2000 PSA_INSTRUCTIONS=8000 PSA_WORKLOAD_LIMIT=2 PSA_THREADS=1 \
      PSA_BENCH_JSON_DIR="$PDIR" \
    cargo bench -q -p psa-bench --bench fig08_spp_variants \
      --profile "$profile" > /dev/null
  cargo run --release --quiet --bin validate_bench -- "$PDIR/BENCH_fig08.json"
  sed -n '1,/"executor"/p' "$PDIR/BENCH_fig08.json" > "$PDIR/stable.json"
done
if ! cmp -s "$GOLD_TMP/bench/stable.json" "$GOLD_TMP/release/stable.json"; then
  echo "bench-profile and release-profile fig08 stable sections disagree:"
  diff "$GOLD_TMP/bench/stable.json" "$GOLD_TMP/release/stable.json" | head -20
  exit 1
fi
if [ "${PSA_UPDATE_GOLDEN:-0}" = 1 ]; then
  cp "$GOLD_TMP/bench/stable.json" "$GOLDEN"
  echo "golden file regenerated: $GOLDEN"
else
  for profile in bench release; do
    if ! cmp -s "$GOLD_TMP/$profile/stable.json" "$GOLDEN"; then
      echo "fig08 stable sections ($profile profile) drifted from $GOLDEN:"
      diff "$GOLDEN" "$GOLD_TMP/$profile/stable.json" | head -20
      echo "(intentional change? regenerate with PSA_UPDATE_GOLDEN=1 ./ci.sh)"
      exit 1
    fi
  done
  echo "stable sections bit-identical to $GOLDEN (bench + release profiles)"
fi

# The same gate for the new prefetcher families (see docs/EXPERIMENTS.md,
# Figure 16): a fixed-budget Pangloss/DSPatch sweep, schema-validated and
# compared byte-for-byte against its own committed stable sections, under
# both optimized profiles.
echo "== golden bit-identity gate (fig16 stable sections) =="
GOLDEN16=crates/experiments/tests/golden/fig16_stable.json
GOLD16_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP" "$GOLD_TMP" \
  "$GOLD16_TMP"' EXIT
for profile in bench release; do
  PDIR="$GOLD16_TMP/$profile"
  mkdir -p "$PDIR"
  env PSA_WARMUP=2000 PSA_INSTRUCTIONS=8000 PSA_WORKLOAD_LIMIT=2 PSA_THREADS=1 \
      PSA_BENCH_JSON_DIR="$PDIR" \
    cargo bench -q -p psa-bench --bench fig16_new_families \
      --profile "$profile" > /dev/null
  cargo run --release --quiet --bin validate_bench -- "$PDIR/BENCH_fig16.json"
  sed -n '1,/"executor"/p' "$PDIR/BENCH_fig16.json" > "$PDIR/stable.json"
done
if ! cmp -s "$GOLD16_TMP/bench/stable.json" "$GOLD16_TMP/release/stable.json"; then
  echo "bench-profile and release-profile fig16 stable sections disagree:"
  diff "$GOLD16_TMP/bench/stable.json" "$GOLD16_TMP/release/stable.json" | head -20
  exit 1
fi
if [ "${PSA_UPDATE_GOLDEN:-0}" = 1 ]; then
  cp "$GOLD16_TMP/bench/stable.json" "$GOLDEN16"
  echo "golden file regenerated: $GOLDEN16"
else
  for profile in bench release; do
    if ! cmp -s "$GOLD16_TMP/$profile/stable.json" "$GOLDEN16"; then
      echo "fig16 stable sections ($profile profile) drifted from $GOLDEN16:"
      diff "$GOLDEN16" "$GOLD16_TMP/$profile/stable.json" | head -20
      echo "(intentional change? regenerate with PSA_UPDATE_GOLDEN=1 ./ci.sh)"
      exit 1
    fi
  done
  echo "stable sections bit-identical to $GOLDEN16 (bench + release profiles)"
fi

# Trace-replay gate (see docs/TRACES.md): the committed sample trace
# must be (a) byte-identical to what `psa_trace_tool gen` deterministically
# regenerates, (b) verifiable by the full streaming walk, and (c) replay
# to byte-identical committed stable sections under BOTH optimized
# profiles — pinning the .psatrace codec and the replay semantics at once.
echo "== trace-replay gate (fixture regen + golden stable sections) =="
FIXTURE=crates/experiments/tests/golden/sample.psatrace
GOLDENTR=crates/experiments/tests/golden/trace_replay_stable.json
TRACE_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP" "$GOLD_TMP" \
  "$GOLD16_TMP" "$TRACE_TMP"' EXIT
cargo run --release --quiet --bin psa_trace_tool -- \
  gen mcf "$TRACE_TMP/sample.psatrace" --seed 7 --instructions 12000 > /dev/null
if ! cmp -s "$TRACE_TMP/sample.psatrace" "$FIXTURE"; then
  echo "psa_trace_tool gen no longer reproduces the committed fixture $FIXTURE"
  echo "(format or generator drift; regenerate the fixture AND its goldens deliberately)"
  exit 1
fi
cargo run --release --quiet --bin psa_trace_tool -- verify "$FIXTURE" > /dev/null
for profile in bench release; do
  PDIR="$TRACE_TMP/$profile"
  mkdir -p "$PDIR"
  env PSA_WARMUP=2000 PSA_INSTRUCTIONS=8000 PSA_THREADS=1 \
      PSA_BENCH_JSON_DIR="$PDIR" \
    cargo bench -q -p psa-bench --bench trace_replay \
      --profile "$profile" > /dev/null
  cargo run --release --quiet --bin validate_bench -- "$PDIR/BENCH_trace_replay.json"
  sed -n '1,/"executor"/p' "$PDIR/BENCH_trace_replay.json" > "$PDIR/stable.json"
done
if ! cmp -s "$TRACE_TMP/bench/stable.json" "$TRACE_TMP/release/stable.json"; then
  echo "bench-profile and release-profile trace_replay stable sections disagree:"
  diff "$TRACE_TMP/bench/stable.json" "$TRACE_TMP/release/stable.json" | head -20
  exit 1
fi
if [ "${PSA_UPDATE_GOLDEN:-0}" = 1 ]; then
  cp "$TRACE_TMP/bench/stable.json" "$GOLDENTR"
  echo "golden file regenerated: $GOLDENTR"
else
  for profile in bench release; do
    if ! cmp -s "$TRACE_TMP/$profile/stable.json" "$GOLDENTR"; then
      echo "trace_replay stable sections ($profile profile) drifted from $GOLDENTR:"
      diff "$GOLDENTR" "$TRACE_TMP/$profile/stable.json" | head -20
      echo "(intentional change? regenerate with PSA_UPDATE_GOLDEN=1 ./ci.sh)"
      exit 1
    fi
  done
  echo "fixture regenerates byte-identically; replay stable sections match $GOLDENTR"
fi

# IO fault-injection gate (see docs/ROBUSTNESS.md): the same fixed-budget
# fig08 sweep, but with the checkpoint store running over a seeded
# FaultPlan that mixes all four fault kinds (torn writes, bit flips,
# ENOSPC, transient EIO). Cold pass seeds the faulted store, warm pass
# reads back through it. Both documents must schema-validate with an
# empty failures array, both stable sections must match the golden bytes
# (graceful degradation: faults cost re-work, never wrong bits), and the
# store counters must prove faults actually fired.
echo "== IO fault-injection gate (fig08 under PSA_FAULT_PLAN) =="
FAULT_TMP="$(mktemp -d)"
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP" "$GOLD_TMP" \
  "$GOLD16_TMP" "$FAULT_TMP"' EXIT
mkdir -p "$FAULT_TMP/store" "$FAULT_TMP/cold" "$FAULT_TMP/warm"
FAULT_ENV=(PSA_WARMUP=2000 PSA_INSTRUCTIONS=8000 PSA_WORKLOAD_LIMIT=2
           PSA_THREADS=1 PSA_CKPT_DIR="$FAULT_TMP/store"
           PSA_FAULT_PLAN="seed=7,torn=0.05,flip=0.05,enospc=0.02,eio=0.10")
for pass in cold warm; do
  env "${FAULT_ENV[@]}" PSA_BENCH_JSON_DIR="$FAULT_TMP/$pass" \
    cargo bench -q -p psa-bench --bench fig08_spp_variants > /dev/null
  cargo run --release --quiet --bin validate_bench -- \
    "$FAULT_TMP/$pass/BENCH_fig08.json"
  sed -n '1,/"executor"/p' "$FAULT_TMP/$pass/BENCH_fig08.json" \
    > "$FAULT_TMP/$pass/stable.json"
  if ! cmp -s "$FAULT_TMP/$pass/stable.json" "$GOLDEN"; then
    echo "faulted $pass fig08 run drifted from $GOLDEN:"
    diff "$GOLDEN" "$FAULT_TMP/$pass/stable.json" | head -20
    exit 1
  fi
done
if grep -q '"injected_faults": 0' "$FAULT_TMP/cold/BENCH_fig08.json" \
   && grep -q '"injected_faults": 0' "$FAULT_TMP/warm/BENCH_fig08.json"; then
  echo "fault plan injected nothing across cold+warm passes"
  exit 1
fi
echo "rows identical under injected faults, plan verifiably active"

# Server smoke gate (see docs/SERVER.md): boot the psa_serve daemon on
# an ephemeral port, run one sweep end to end over real sockets with
# the bundled client (no curl needed), schema-validate the served
# document, scrape /metrics, prove a repeat submission dedups, then
# SIGTERM with queued work in flight — the daemon must drain and exit 0.
echo "== server smoke gate (psa_serve e2e + SIGTERM drain) =="
SERVE_TMP="$(mktemp -d)"
SERVE_PID=""
trap 'rm -rf "$CKPT_TMP" "$COLD_TMP" "$WARM_TMP" "$OBS_TMP" "$GOLD_TMP" \
  "$GOLD16_TMP" "$FAULT_TMP" "$SERVE_TMP"
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
target/release/psa_serve serve --addr 127.0.0.1:0 --job-delay-ms 200 \
  --port-file "$SERVE_TMP/port" > "$SERVE_TMP/log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE_TMP/port" ] && break; sleep 0.1; done
[ -s "$SERVE_TMP/port" ] || {
  echo "psa_serve never wrote its port file"; cat "$SERVE_TMP/log"; exit 1; }
BASE="http://127.0.0.1:$(cat "$SERVE_TMP/port")"
CLIENT=(target/release/psa_serve client)
"${CLIENT[@]}" GET "$BASE/healthz" > "$SERVE_TMP/health"
grep -q '"ok"' "$SERVE_TMP/health"
SPEC='{"figure": "fig08", "workloads": ["lbm"],
       "variants": ["SPP", "no-prefetch"], "seed": 9,
       "warmup": 2000, "instructions": 8000}'
"${CLIENT[@]}" POST "$BASE/jobs" --body "$SPEC" > "$SERVE_TMP/submit"
JOB="$(grep -o '"id": "[^"]*"' "$SERVE_TMP/submit" | head -1 | cut -d'"' -f4)"
[ -n "$JOB" ] || { echo "job submission failed:"; cat "$SERVE_TMP/submit"; exit 1; }
for _ in $(seq 1 600); do
  "${CLIENT[@]}" GET "$BASE/jobs/$JOB" > "$SERVE_TMP/status"
  grep -q '"state": "done"' "$SERVE_TMP/status" && break
  grep -q '"state": "failed"' "$SERVE_TMP/status" && {
    echo "served job failed:"; cat "$SERVE_TMP/status"; exit 1; }
  sleep 0.1
done
grep -q '"state": "done"' "$SERVE_TMP/status" || {
  echo "served job never finished:"; cat "$SERVE_TMP/status"; exit 1; }
"${CLIENT[@]}" GET "$BASE/results/$JOB" > "$SERVE_TMP/BENCH_served.json"
cargo run --release --quiet --bin validate_bench -- "$SERVE_TMP/BENCH_served.json"
"${CLIENT[@]}" GET "$BASE/metrics" > "$SERVE_TMP/metrics"
grep -q '^psa_serve_jobs_completed_total 1$' "$SERVE_TMP/metrics"
grep -q '^# TYPE psa_executor_simulated_runs_total counter$' "$SERVE_TMP/metrics"
grep -q '^# TYPE psa_store_hits_total counter$' "$SERVE_TMP/metrics"
# An identical resubmission must join the finished job, not re-run it.
"${CLIENT[@]}" POST "$BASE/jobs" --body "$SPEC" > "$SERVE_TMP/resubmit"
grep -q '"deduped": true' "$SERVE_TMP/resubmit"
# Queue one more sweep and SIGTERM while it is in flight: the daemon
# must drain it ("draining N jobs" ... "shutdown complete") and exit 0.
SPEC2='{"figure": "fig08", "workloads": ["lbm"],
        "variants": ["SPP", "no-prefetch"], "seed": 10,
        "warmup": 2000, "instructions": 8000}'
"${CLIENT[@]}" POST "$BASE/jobs" --body "$SPEC2" > /dev/null
kill -TERM "$SERVE_PID"
SERVE_RC=0; wait "$SERVE_PID" || SERVE_RC=$?
SERVE_PID=""
[ "$SERVE_RC" = 0 ] || {
  echo "psa_serve exited $SERVE_RC:"; cat "$SERVE_TMP/log"; exit 1; }
grep -q 'draining' "$SERVE_TMP/log" || {
  echo "daemon never reported draining:"; cat "$SERVE_TMP/log"; exit 1; }
grep -q 'shutdown complete' "$SERVE_TMP/log" || {
  echo "daemon never reported shutdown:"; cat "$SERVE_TMP/log"; exit 1; }
echo "served document validated, dedup live, metrics scraped, drain clean"

echo "ci.sh: all green"
