//! Developer probe: prefetch accuracy per pattern component, to attribute
//! wasted prefetches.
//!
//! ```text
//! cargo run --release --example component_probe [spp|bop|vldp|ppf]
//! ```

use page_size_aware_prefetching::prelude::*;

fn main() {
    let cfg = RunnerOptions::from_env()
        .expect("PSA_* variables parse")
        .apply(
            SimConfig::default()
                .with_warmup(40_000)
                .with_instructions(120_000),
        );
    let cases: Vec<(&str, PatternMix)> = vec![
        (
            "stream-only",
            PatternMix {
                stream: 1.0,
                ..Default::default()
            },
        ),
        (
            "stride-only",
            PatternMix {
                stride_small: 1.0,
                ..Default::default()
            },
        ),
        (
            "stream+stride",
            PatternMix {
                stream: 1.0,
                stride_small: 0.2,
                ..Default::default()
            },
        ),
        (
            "stream+hot",
            PatternMix {
                stream: 1.0,
                hot: 0.1,
                ..Default::default()
            },
        ),
        (
            "stream+random",
            PatternMix {
                stream: 1.0,
                random: 0.02,
                ..Default::default()
            },
        ),
        (
            "lbm-mix",
            PatternMix {
                stream: 1.0,
                stride_small: 0.2,
                random: 0.02,
                hot: 0.1,
                ..Default::default()
            },
        ),
    ];
    for (name, mix) in cases {
        let w = WorkloadSpec {
            name: "probe",
            suite: Suite::Spec06,
            huge_fraction: 0.95,
            footprint: 256 << 20,
            mem_ratio: 0.40,
            store_ratio: 0.18,
            dependent_fraction: 0.0,
            mix,
            intensive: true,
        };
        let kind = match std::env::args().nth(1).as_deref() {
            Some("bop") => PrefetcherKind::Bop,
            Some("vldp") => PrefetcherKind::Vldp,
            Some("ppf") => PrefetcherKind::Ppf,
            _ => PrefetcherKind::Spp,
        };
        let base = System::baseline(cfg, &w).run();
        print!("{name:14} base={:.3}", base.ipc());
        for pol in [PageSizePolicy::Original, PageSizePolicy::Psa] {
            let r = System::single_core(cfg, &w, kind, pol).run();
            let fills = r.llc.prefetch_fills + r.l2c.prefetch_fills;
            let useful = r.llc.useful_prefetches + r.l2c.useful_prefetches;
            print!(
                " | {pol}: {:+.1}% fills={} useful={} dram={}",
                (r.ipc() / base.ipc() - 1.0) * 100.0,
                fills,
                useful,
                r.dram.reads
            );
        }
        println!(" (base dram={})", base.dram.reads);
    }
}
