//! Developer diagnostics: per-workload speedups of the SPP variants over
//! the no-prefetch baseline, with issue-path detail for named workloads.
//!
//! ```text
//! cargo run --release --example debug_stats            # summary table
//! cargo run --release --example debug_stats lbm mcf    # detail for lbm, mcf
//! ```

use page_size_aware_prefetching::prelude::*;

const SET: [&str; 8] = [
    "lbm",
    "milc",
    "soplex",
    "tc.road",
    "mcf",
    "pr.road",
    "qmm_fp_67",
    "hmmer",
];

fn main() {
    let cfg = RunnerOptions::from_env()
        .expect("PSA_* variables parse")
        .apply(
            SimConfig::default()
                .with_warmup(20_000)
                .with_instructions(60_000),
        );
    let detail: Vec<String> = std::env::args().skip(1).collect();
    for name in SET {
        let w = catalog::workload(name).expect("in catalog");
        let base = System::baseline(cfg, w).run();
        let detailed = detail.iter().any(|d| d == name);
        if detailed {
            println!(
                "{name} base: ipc={:.3} l2m={} llm={} dram={} rowhit={:.2} lat2={:.0} lat3={:.0}",
                base.ipc(),
                base.l2c.demand_misses,
                base.llc.demand_misses,
                base.dram.reads,
                base.dram.row_hit_rate(),
                base.l2c_avg_latency,
                base.llc_avg_latency
            );
        } else if detail.is_empty() {
            print!("{name:10} base={:.3}", base.ipc());
        }
        for pol in PageSizePolicy::ALL {
            let r = System::single_core(cfg, w, PrefetcherKind::Spp, pol).run();
            if detailed {
                let m = r.module.expect("prefetching run");
                println!(
                    "  {pol:8}: ipc={:.3} ({:+.1}%) l2m={} llm={} iss={} ded={} l2(f={},u={},ul={}) ll(f={},u={},ul={}) lat2={:.0} lat3={:.0} dram={}",
                    r.ipc(),
                    (r.ipc() / base.ipc() - 1.0) * 100.0,
                    r.l2c.demand_misses,
                    r.llc.demand_misses,
                    m.issued,
                    m.deduped,
                    r.l2c.prefetch_fills,
                    r.l2c.useful_prefetches,
                    r.l2c.useless_prefetches,
                    r.llc.prefetch_fills,
                    r.llc.useful_prefetches,
                    r.llc.useless_prefetches,
                    r.l2c_avg_latency,
                    r.llc_avg_latency,
                    r.dram.reads,
                );
                let d = &r.debug;
                println!(
                    "            l1stall={} clean={}@{:.0} merged={}@{:.0} rowhit={:.2} bus={}",
                    d.mshr_bump_stall,
                    d.clean_misses,
                    if d.clean_misses > 0 {
                        d.clean_latency_sum as f64 / d.clean_misses as f64
                    } else {
                        0.0
                    },
                    d.merged_misses,
                    if d.merged_misses > 0 {
                        d.merged_latency_sum as f64 / d.merged_misses as f64
                    } else {
                        0.0
                    },
                    r.dram.row_hit_rate(),
                    r.dram.bus_busy_cycles,
                );
                println!(
                    "            loads={} avg_load_latency={:.1}",
                    d.loads,
                    if d.loads > 0 {
                        d.load_latency_sum as f64 / d.loads as f64
                    } else {
                        0.0
                    }
                );
                println!("            max_load_latency={}", d.load_latency_max);
            } else if detail.is_empty() {
                print!(" {}={:+.1}%", pol, (r.ipc() / base.ipc() - 1.0) * 100.0);
            }
        }
        if detail.is_empty() {
            println!();
        }
    }
}
