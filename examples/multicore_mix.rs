//! Multi-core demo: run a 4-core mix with SPP-PSA-SD and report the
//! weighted speedup over original SPP, as in Figure 14.
//!
//! ```text
//! cargo run --release --example multicore_mix [w1 w2 w3 w4]
//! ```

use page_size_aware_prefetching::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if args.len() == 4 {
        args.iter().map(String::as_str).collect()
    } else {
        vec!["lbm", "milc", "mcf", "soplex"]
    };
    let mix: Vec<_> = names
        .iter()
        .map(|n| catalog::workload(n).unwrap_or_else(|| panic!("unknown workload '{n}'")))
        .collect();

    let config = RunnerOptions::from_env()
        .expect("PSA_* variables parse")
        .apply(
            SimConfig::for_cores(4)
                .with_warmup(20_000)
                .with_instructions(60_000),
        );

    println!("mix: {names:?}\n");
    let base =
        System::multi_core(config, &mix, PrefetcherKind::Spp, PageSizePolicy::Original).run_multi();
    let eval =
        System::multi_core(config, &mix, PrefetcherKind::Spp, PageSizePolicy::PsaSd).run_multi();

    // Isolation IPCs on the same (multi-core-spec) machine, per §V-B.
    let isolation: Vec<f64> = mix
        .iter()
        .map(|w| {
            System::multi_core(config, &[w], PrefetcherKind::Spp, PageSizePolicy::Original)
                .run_multi()
                .ipc[0]
        })
        .collect();

    for (i, name) in names.iter().enumerate() {
        println!(
            "core {i} {name:>16}: SPP {:.3} IPC → SPP-PSA-SD {:.3} IPC (isolation {:.3})",
            base.ipc[i], eval.ipc[i], isolation[i]
        );
    }
    let ws = weighted_speedup(&eval.ipc, &base.ipc, &isolation);
    println!(
        "\nweighted speedup of SPP-PSA-SD over SPP original: {:+.1}%",
        (ws - 1.0) * 100.0
    );
    println!(
        "shared LLC: {} demand misses; DRAM row-hit rate {:.0}%",
        eval.llc.demand_misses,
        eval.dram.row_hit_rate() * 100.0
    );
}
