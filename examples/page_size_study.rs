//! The paper's motivation study in miniature: run the nine representative
//! benchmarks (Figures 3–5) and show how 2MB-page usage creates the
//! opportunity that PPM exploits — and when 2MB *indexing* helps or hurts.
//!
//! ```text
//! cargo run --release --example page_size_study
//! ```

use page_size_aware_prefetching::prelude::*;

fn main() {
    let config = RunnerOptions::from_env()
        .expect("PSA_* variables parse")
        .apply(
            SimConfig::default()
                .with_warmup(30_000)
                .with_instructions(90_000),
        );

    let mut t = Table::new(vec![
        "benchmark".into(),
        "2MB usage".into(),
        "SPP %".into(),
        "SPP-PSA %".into(),
        "SPP-PSA-2MB %".into(),
        "SPP-PSA-SD %".into(),
    ]);
    for name in catalog::MOTIVATION_SET {
        let w = catalog::workload(name).expect("catalog entry");
        let base = System::baseline(config, w).run();
        let speedup = |policy| {
            let r = System::single_core(config, w, PrefetcherKind::Spp, policy).run();
            format!("{:+.1}", (r.ipc() / base.ipc() - 1.0) * 100.0)
        };
        t.row(vec![
            w.name.into(),
            format!("{:.0}%", base.huge_usage * 100.0),
            speedup(PageSizePolicy::Original),
            speedup(PageSizePolicy::Psa),
            speedup(PageSizePolicy::Psa2m),
            speedup(PageSizePolicy::PsaSd),
        ]);
    }
    println!("Speedups over the no-prefetch baseline:\n\n{}", t.render());
    println!("Note how soplex (4KB-dominated) gains nothing from page-size awareness,");
    println!("milc's long strides need 2MB *indexing*, and the Set-Dueling composite");
    println!("tracks the better variant per workload.");
}
