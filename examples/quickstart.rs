//! Quickstart: simulate one workload under SPP with and without page-size
//! awareness and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart [workload]
//! ```

use page_size_aware_prefetching::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lbm".into());
    let Some(workload) = catalog::workload(&name) else {
        eprintln!("unknown workload '{name}'; try one of:");
        for w in catalog::all() {
            eprint!("{} ", w.name);
        }
        eprintln!();
        std::process::exit(1);
    };

    let config = RunnerOptions::from_env()
        .expect("PSA_* variables parse")
        .apply(
            SimConfig::default()
                .with_warmup(50_000)
                .with_instructions(150_000),
        );
    println!("{}", config.table1());

    let baseline = System::baseline(config, workload).run();
    println!(
        "{name}: no-prefetch baseline  IPC {:.3}  (LLC MPKI {:.1}, {:.0}% of memory in 2MB pages)\n",
        baseline.ipc(),
        baseline.llc_mpki(),
        baseline.huge_usage * 100.0
    );

    for policy in PageSizePolicy::ALL {
        let report = System::single_core(config, workload, PrefetcherKind::Spp, policy).run();
        let module = report.module.expect("prefetching run");
        println!(
            "SPP{:<9} IPC {:.3} ({:+.1}% vs baseline)  L2C MPKI {:>5.1}  issued {:>6} prefetches",
            policy.suffix(),
            report.ipc(),
            (report.ipc() / baseline.ipc() - 1.0) * 100.0,
            report.l2c_mpki(),
            module.issued,
        );
        if let Some(b) = report.boundary {
            println!(
                "             boundary: {:.1}% of candidates discarded for crossing 4KB inside a 2MB page",
                b.discard_probability() * 100.0
            );
        }
    }
}
